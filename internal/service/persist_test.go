package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/spot"
)

// fetch returns the raw response body for a path on the test server.
func fetch(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body
}

// TestSnapshotRestoreServesIdenticalBytes is the warm-restart acceptance
// test: a server restored from a snapshot must serve byte-identical
// prediction responses before any refresh runs.
func TestSnapshotRestoreServesIdenticalBytes(t *testing.T) {
	hist := testStore(t)
	srv, err := New(Config{Source: hist, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	payload, err := srv.EncodeSnapshot()
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}

	// A brand-new server process: same config, no refresh — only the
	// snapshot.
	restored, err := New(Config{Source: hist, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(payload); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}

	ts1 := httptest.NewServer(srv.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(restored.Handler())
	defer ts2.Close()
	paths := []string{"/v1/combos"}
	for _, c := range testCombos {
		for _, prob := range []float64{0.95, 0.99} {
			paths = append(paths, fmt.Sprintf(
				"/v1/predictions?zone=%s&type=%s&probability=%v", c.Zone, c.Type, prob))
		}
	}
	for _, path := range paths {
		before := fetch(t, ts1, path)
		after := fetch(t, ts2, path)
		if !bytes.Equal(before, after) {
			t.Errorf("GET %s diverged after restore:\n before: %s\n after:  %s",
				path, before, after)
		}
	}
}

// TestSnapshotRestoreResumesEpochSeq pins the replication contract across
// writer restarts: the epoch counter persists in the snapshot, so the
// restore's own install publishes above the pre-crash sequence and
// long-lived replicas never see the writer's numbering run backwards.
func TestSnapshotRestoreResumesEpochSeq(t *testing.T) {
	hist := testStore(t)
	srv, err := New(Config{Source: hist, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := srv.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	if seq := srv.CurrentEpoch().Seq(); seq != 3 {
		t.Fatalf("writer at epoch %d before restart, want 3", seq)
	}
	payload, err := srv.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := New(Config{Source: hist, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(payload); err != nil {
		t.Fatal(err)
	}
	if seq := restored.CurrentEpoch().Seq(); seq != 4 {
		t.Fatalf("restore installed epoch %d, want 4 (snapshot counter 3 + restore's install)", seq)
	}
	if err := restored.Refresh(); err != nil {
		t.Fatal(err)
	}
	if seq := restored.CurrentEpoch().Seq(); seq != 5 {
		t.Fatalf("post-restore refresh installed epoch %d, want 5", seq)
	}
}

// TestSnapshotRestoreReplaysTail verifies that predictors restored from a
// snapshot catch up on history ticks appended after the snapshot was cut.
func TestSnapshotRestoreReplaysTail(t *testing.T) {
	hist := testStore(t)
	srv, err := New(Config{Source: hist, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	payload, err := srv.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Ticks arrive while the process is down.
	const extra = 7
	for i := 0; i < extra; i++ {
		for _, c := range testCombos {
			ser, _ := hist.Full(c)
			hist.Append(c, t0, ser.Prices[ser.Len()-1])
		}
	}

	restored, err := New(Config{Source: hist, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(payload); err != nil {
		t.Fatal(err)
	}
	wantNow := t0.Add(time.Duration(9000+extra-1) * spot.UpdatePeriod)
	restored.mu.RLock()
	defer restored.mu.RUnlock()
	if len(restored.preds) == 0 {
		t.Fatal("no predictors restored")
	}
	for k, pred := range restored.preds {
		if !pred.Now().Equal(wantNow) {
			t.Errorf("%s/p=%v: predictor clock %v, want %v (tail not replayed)",
				k.combo, k.prob, pred.Now(), wantNow)
		}
	}
}

func TestSnapshotRejectsDefects(t *testing.T) {
	srv := testServer(t)
	payload, err := srv.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Server {
		s, err := New(Config{Source: testStore(t), MaxHistory: 9000})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for name, in := range map[string][]byte{
		"garbage":     []byte("not json"),
		"bad-version": []byte(`{"version":99,"entries":[{}]}`),
		"empty":       []byte(`{"version":1,"entries":[]}`),
	} {
		if err := fresh().RestoreSnapshot(in); err == nil {
			t.Errorf("RestoreSnapshot accepted %s", name)
		}
	}
	if err := fresh().RestoreSnapshot(payload); err != nil {
		t.Errorf("RestoreSnapshot rejected a valid snapshot: %v", err)
	}
}

func TestEncodeSnapshotEmptyServer(t *testing.T) {
	srv, err := New(Config{Source: history.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.EncodeSnapshot(); err == nil {
		t.Fatal("EncodeSnapshot succeeded with no tables")
	}
}

// memDurable records Durable calls for assertion.
type memDurable struct {
	snapshots [][]byte
	compacted []time.Time
}

func (m *memDurable) WriteSnapshot(p []byte) error {
	m.snapshots = append(m.snapshots, append([]byte(nil), p...))
	return nil
}

func (m *memDurable) CompactBefore(oldest time.Time) (int, error) {
	m.compacted = append(m.compacted, oldest)
	return 0, nil
}

func TestRefreshPersistsThroughDurable(t *testing.T) {
	durable := &memDurable{}
	srv, err := New(Config{Source: testStore(t), MaxHistory: 9000, Durable: durable})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	if len(durable.snapshots) != 1 {
		t.Fatalf("refresh wrote %d snapshots, want 1", len(durable.snapshots))
	}
	if len(durable.compacted) != 1 {
		t.Fatalf("refresh requested %d compactions, want 1", len(durable.compacted))
	}
	// The snapshot written must be restorable.
	restored, err := New(Config{Source: testStore(t), MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(durable.snapshots[0]); err != nil {
		t.Fatalf("durable snapshot does not restore: %v", err)
	}
}

func TestPreRefreshHookRuns(t *testing.T) {
	calls := 0
	srv, err := New(Config{
		Source:     testStore(t),
		MaxHistory: 9000,
		PreRefresh: func() error { calls++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("PreRefresh ran %d times, want 1", calls)
	}
	// A failing hook must not fail the refresh.
	srv.cfg.PreRefresh = func() error { calls++; return fmt.Errorf("boom") }
	if err := srv.Refresh(); err != nil {
		t.Fatalf("refresh failed on PreRefresh error: %v", err)
	}
	if calls != 2 {
		t.Fatalf("PreRefresh ran %d times, want 2", calls)
	}
}

func TestRefreshWorkersConfig(t *testing.T) {
	if _, err := New(Config{Source: history.NewStore(), RefreshWorkers: -1}); err == nil {
		t.Fatal("negative RefreshWorkers accepted")
	}
	// A single worker must still complete a full refresh.
	srv, err := New(Config{Source: testStore(t), MaxHistory: 9000, RefreshWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv.mu.RLock()
	n := len(srv.tables)
	srv.mu.RUnlock()
	if n != len(testCombos)*2 {
		t.Fatalf("single-worker refresh built %d tables, want %d", n, len(testCombos)*2)
	}
}
