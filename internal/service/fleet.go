package service

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/spot"
)

// POST /v1/fleet is the catalog-wide advise query: given a duration and
// probability, rank every compliant (zone, instance type) combo by the
// minimal bid that carries the guarantee — the cross-combo argmin over the
// precomputed advise surfaces. It answers the fleet-composition question
// ("what is the cheapest capacity anywhere that survives D hours at
// probability p?") that per-combo /v1/advise cannot, in one batched,
// paginated request. Any surface-bearing node — writer or replica —
// answers identically for the same epoch.

const (
	// defaultFleetCount is the page size when the request omits count.
	defaultFleetCount = 10
	// maxFleetCount caps one page; deeper result sets paginate.
	maxFleetCount = 100
	// maxFleetBody bounds the request body read.
	maxFleetBody = 1 << 20
)

// FleetRequest is the POST /v1/fleet body. Zones and Types filter the
// catalog: an entry matches when it equals a pattern exactly or, for
// patterns ending in '*', carries the prefix before it ("c4.*"). Empty
// lists match everything. Cursor resumes a prior response's pagination.
type FleetRequest struct {
	Duration    string   `json:"duration"`
	Probability float64  `json:"probability,omitempty"`
	Zones       []string `json:"zones,omitempty"`
	Types       []string `json:"types,omitempty"`
	Count       int      `json:"count,omitempty"`
	Cursor      string   `json:"cursor,omitempty"`
}

// FleetQuote is one ranked fleet result: the combo and the minimal bid
// guaranteeing the requested duration there, with the (at least as long)
// guaranteed duration at that bid.
type FleetQuote struct {
	Zone            string  `json:"zone"`
	InstanceType    string  `json:"instance_type"`
	Bid             float64 `json:"bid_usd_per_hour"`
	DurationSeconds float64 `json:"guaranteed_duration_seconds"`
}

// FleetResponse is the POST /v1/fleet response: one page of compliant
// combos, cheapest first (ties broken by zone then type, so pagination is
// total and stable within an epoch). TotalCompliant counts every combo
// that can carry the guarantee under the request's filters, across all
// pages; NextCursor is set when more pages follow.
type FleetResponse struct {
	DurationSeconds float64      `json:"duration_seconds"`
	Probability     float64      `json:"probability"`
	AsOf            time.Time    `json:"as_of"`
	TotalCompliant  int          `json:"total_compliant"`
	Results         []FleetQuote `json:"results"`
	NextCursor      string       `json:"next_cursor,omitempty"`
}

// fleetCursor is the keyset pagination position: pages resume strictly
// after this (bid tick, zone, type) tuple in ranking order, so a combo
// appearing or vanishing between requests shifts neighbors by at most
// itself instead of sliding the whole offset.
type fleetCursor struct {
	tick int
	zone string
	typ  string
}

func (c fleetCursor) less(o fleetCursor) bool {
	if c.tick != o.tick {
		return c.tick < o.tick
	}
	if c.zone != o.zone {
		return c.zone < o.zone
	}
	return c.typ < o.typ
}

const fleetCursorPrefix = "1:"

func encodeFleetCursor(c fleetCursor) string {
	raw := fleetCursorPrefix + strconv.Itoa(c.tick) + ":" + c.zone + "/" + c.typ
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

func decodeFleetCursor(s string) (fleetCursor, bool, error) {
	if s == "" {
		return fleetCursor{}, false, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return fleetCursor{}, false, fmt.Errorf("not base64url")
	}
	rest, ok := strings.CutPrefix(string(raw), fleetCursorPrefix)
	if !ok {
		return fleetCursor{}, false, fmt.Errorf("unknown cursor version")
	}
	tickStr, comboStr, ok := strings.Cut(rest, ":")
	if !ok {
		return fleetCursor{}, false, fmt.Errorf("malformed cursor")
	}
	tick, err := strconv.Atoi(tickStr)
	if err != nil || tick < 0 {
		return fleetCursor{}, false, fmt.Errorf("malformed cursor tick")
	}
	zone, typ, ok := strings.Cut(comboStr, "/")
	if !ok || zone == "" || typ == "" {
		return fleetCursor{}, false, fmt.Errorf("malformed cursor combo")
	}
	return fleetCursor{tick: tick, zone: zone, typ: typ}, true, nil
}

// fleetMatch reports whether v satisfies the pattern list: empty matches
// all; otherwise exact equality or a '*'-terminated prefix pattern.
func fleetMatch(patterns []string, v string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if strings.HasSuffix(p, "*") {
			if strings.HasPrefix(v, p[:len(p)-1]) {
				return true
			}
		} else if p == v {
			return true
		}
	}
	return false
}

// fleetCandidate is one compliant combo during ranking.
type fleetCandidate struct {
	cur   fleetCursor
	quote core.Quote
}

// handleFleet serves POST /v1/fleet. The scan is cheap — one surface
// lookup per catalog combo, each an O(1) grid snap or O(log n)
// refinement — so every page recomputes the full ranking and resumes at
// the cursor; no per-client state is held.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req FleetRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxFleetBody)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid fleet request: %v", err)
		return
	}
	if req.Duration == "" {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "duration is required (e.g. 12h)")
		return
	}
	d, err := time.ParseDuration(req.Duration)
	if err != nil || d <= 0 {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid duration %q", req.Duration)
		return
	}
	prob := req.Probability
	if prob == 0 {
		prob = 0.99
	}
	if !(prob > 0 && prob < 1) {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid probability %v", req.Probability)
		return
	}
	count := req.Count
	if count == 0 {
		count = defaultFleetCount
	}
	if count < 0 {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid count %d", req.Count)
		return
	}
	if count > maxFleetCount {
		count = maxFleetCount
	}
	after, hasAfter, err := decodeFleetCursor(req.Cursor)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid cursor: %v", err)
		return
	}
	et := s.blobs.Load()
	if et == nil {
		writeErr(w, http.StatusServiceUnavailable, codeStale, "no tables computed yet")
		return
	}
	if !s.checkStaleness(w, et.asOf) {
		return
	}
	entries := et.fleet[probKey(prob)]
	if len(entries) == 0 {
		writeErr(w, http.StatusNotFound, codeNotFound, "no advise surfaces at probability %v", prob)
		return
	}

	cands := make([]fleetCandidate, 0, len(entries))
	for _, e := range entries {
		if !fleetMatch(req.Zones, e.zone) || !fleetMatch(req.Types, e.typ) {
			continue
		}
		q, ok := e.surf.Lookup(d)
		if !ok {
			continue
		}
		cands = append(cands, fleetCandidate{
			cur:   fleetCursor{tick: spot.Ticks(q.Bid), zone: e.zone, typ: e.typ},
			quote: q,
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cur.less(cands[j].cur) })

	start := 0
	if hasAfter {
		start = sort.Search(len(cands), func(i int) bool { return after.less(cands[i].cur) })
	}
	page := cands[start:]
	next := ""
	if len(page) > count {
		page = page[:count]
		next = encodeFleetCursor(page[len(page)-1].cur)
	}
	resp := FleetResponse{
		DurationSeconds: d.Seconds(),
		Probability:     prob,
		AsOf:            et.asOf,
		TotalCompliant:  len(cands),
		Results:         make([]FleetQuote, 0, len(page)),
		NextCursor:      next,
	}
	for _, c := range page {
		resp.Results = append(resp.Results, FleetQuote{
			Zone:            c.cur.zone,
			InstanceType:    c.cur.typ,
			Bid:             c.quote.Bid,
			DurationSeconds: c.quote.Duration.Seconds(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
