package service

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/drafts-go/drafts/internal/tenant"
)

// errRateLimited marks a 429'd request's trace so it lands in the flight
// recorder's error ring like a shed request does.
var errRateLimited = errors.New("tenant rate limit exceeded")

// Tenant authentication and per-tenant limiting run inside serve(), before
// the shared admission semaphore: a tenant over its own quota is refused
// with 429 rate_limited without ever holding an admission slot, so one
// abusive key cannot starve compliant tenants behind the semaphore. The
// order is identity -> token bucket -> weighted concurrency share ->
// shared admission. All of it is allocation-free on the admit path: the
// key is read straight from the header map, hashed through a stack buffer
// (tenant.Registry.Lookup), and the resolved *tenant.Tenant rides the
// pooled statusWriter exactly like the request's trace does.

// bearerPrefix is the Authorization scheme the v1 API accepts.
const bearerPrefix = "Bearer "

// wwwAuthenticate is stamped on every 401 so generic clients know the
// scheme; the value is constant, so the cold path shares one allocation.
var wwwAuthenticate = []string{`Bearer realm="drafts"`}

// accountDeprecation / accountSunset document the ?account= alias's
// lifecycle (RFC 9745 / RFC 8594): deprecated as of 2026-08-01, removal no
// earlier than 2027-08-01. API.md's "Authentication & limits" section is
// the human-readable half of this contract.
const (
	accountDeprecation = "@1785542400"                   // 2026-08-01T00:00:00Z
	accountSunset      = "Sun, 01 Aug 2027 00:00:00 GMT" // earliest removal
)

// markAccountParamDeprecated stamps the deprecation headers on a response
// that honoured the legacy ?account= alias.
func markAccountParamDeprecated(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Deprecation", accountDeprecation)
	h.Set("Sunset", accountSunset)
}

// tenantOf recovers the authenticated tenant from the middleware's pooled
// writer. Bare handlers (tests, no middleware) and anonymous servers get
// nil.
//
//drafts:nonalloc
func tenantOf(w http.ResponseWriter) *tenant.Tenant {
	if sw, ok := w.(*statusWriter); ok {
		return sw.tenant
	}
	return nil
}

// authenticate resolves the request's API key to a registered tenant,
// writing the 401 unauthenticated envelope (with WWW-Authenticate) itself
// when the key is missing, malformed, unknown, or revoked. The happy path
// allocates nothing: the Bearer token is a substring of the header value
// and Lookup hashes it on the stack.
func (s *Server) authenticate(sw *statusWriter, r *http.Request) *tenant.Tenant {
	key := r.Header.Get("Authorization")
	if key != "" {
		if !strings.HasPrefix(key, bearerPrefix) {
			s.authFail(sw, "malformed Authorization header; expected Bearer <key>")
			return nil
		}
		key = key[len(bearerPrefix):]
	} else {
		key = r.Header.Get("X-Api-Key")
	}
	if key == "" {
		s.authFail(sw, "missing API key; send Authorization: Bearer <key> or X-Api-Key")
		return nil
	}
	tn := s.tenants.Lookup(key)
	if tn == nil {
		s.authFail(sw, "unknown API key")
		return nil
	}
	if tn.Revoked {
		s.authFail(sw, "API key revoked")
		return nil
	}
	return tn
}

// authFail writes the 401 envelope. Like every error path it may
// allocate; only admitted requests stay on the zero-allocation contract.
func (s *Server) authFail(sw *statusWriter, msg string) {
	sw.Header()["Www-Authenticate"] = wwwAuthenticate
	s.metrics.authFailures.Inc()
	writeErr(sw, http.StatusUnauthorized, codeUnauthenticated, "%s", msg)
}

// admitTenant enforces the tenant's own limits — token bucket first, then
// the weighted concurrency share — writing the 429 rate_limited envelope
// with Retry-After and the RateLimit-* headers on refusal. A true return
// means the tenant holds one concurrency slot the caller must release.
func (s *Server) admitTenant(sw *statusWriter, route string, tn *tenant.Tenant) bool {
	if ok, retry := tn.Allow(); !ok {
		s.rateLimited(sw, route, tn, retry, "tenant %q is over its request rate", tn.ID)
		return false
	}
	if !tn.AcquireSlot() {
		s.rateLimited(sw, route, tn, time.Second, "tenant %q is over its concurrency share", tn.ID)
		return false
	}
	tn.MarkRequest()
	return true
}

// rateLimited writes one 429 refusal. RateLimit-Limit/-Remaining/-Reset
// follow the IETF RateLimit header fields draft: the steady-state
// per-second limit, zero remaining (the refusal proves it), and whole
// seconds until the next token accrues; Retry-After carries the same
// rounded-up hint for clients that only speak HTTP/1.1 semantics.
func (s *Server) rateLimited(sw *statusWriter, route string, tn *tenant.Tenant, retry time.Duration, format string, args ...any) {
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	h := sw.Header()
	reset := strconv.FormatInt(secs, 10)
	h.Set("Retry-After", reset)
	h.Set("Ratelimit-Limit", strconv.FormatFloat(tn.Limit(), 'g', -1, 64))
	h.Set("Ratelimit-Remaining", "0")
	h.Set("Ratelimit-Reset", reset)
	tn.MarkLimited()
	s.metrics.rateLimited.Inc()
	sw.tr.Fail(errRateLimited)
	writeErr(sw, http.StatusTooManyRequests, codeRateLimited, format, args...)
	s.logger.Debug("request rate-limited",
		"route", route, "tenant", tn.ID, "request_id", sw.requestID())
}
