package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/obfuscate"
	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/tenant"
	"github.com/drafts-go/drafts/internal/trace"
)

func getBody(t *testing.T, h http.Handler, target string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

// TestCachedGetZeroAllocs is the acceptance criterion for the serving fast
// path: a cached single-table GET performs zero heap allocations — both on
// a bare server and with tracing enabled at a production sampling rate
// (the unsampled request path must not pay for observability it isn't
// using).
func TestCachedGetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	// Seed 0 is chosen so the tracer's first 400 deterministic trace IDs
	// all fall outside the 1% sampling threshold: the loop below pins the
	// unsampled hot path specifically. Sampling itself is covered by the
	// trace package's own tests.
	tracer, err := trace.New(trace.Config{SampleRate: 0.01, Seed: 0, Now: time.Now})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(Config{Source: testStore(t), MaxHistory: 9000, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if err := traced.Refresh(); err != nil {
		t.Fatal(err)
	}
	// A replica serving a replicated epoch must keep the same guarantee:
	// rebuild the writer's epoch the way the cluster receiver does and
	// install it into a replica server.
	writer := testServer(t)
	wep := writer.CurrentEpoch()
	blobs := make(map[BlobKey][]byte, wep.NumTables())
	for _, k := range wep.Keys() {
		b, _ := wep.Blob(k)
		blobs[k] = b
	}
	rebuilt, err := NewEpoch(wep.Seq(), wep.AsOf(), wep.Combos(), blobs)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewReplica(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.InstallEpoch(rebuilt); err != nil {
		t.Fatal(err)
	}
	// An authenticated tenant-scoped server must keep the guarantee too:
	// the key is hashed on the stack, the token bucket is branch-and-mutex,
	// and the tenant's obfuscated view is a precomputed blob. The tenant's
	// visible us-east-1b is physically us-east-1c, so a passing run proves
	// the renamed-view path specifically (not the identity alias).
	treg, err := tenant.New(tenant.Config{RPS: 1e9}, []tenant.Spec{
		{ID: "acme", Key: "ak_zero_alloc", Account: "acct-42"},
	})
	if err != nil {
		t.Fatal(err)
	}
	authed, err := New(Config{Source: testStore(t), MaxHistory: 9000,
		Tenants: treg,
		AccountMappings: map[string]obfuscate.Mapping{"acct-42": {
			"us-east-1b": "us-east-1c",
			"us-east-1c": "us-east-1b",
			"us-west-1a": "us-west-1a",
		}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := authed.Refresh(); err != nil {
		t.Fatal(err)
	}
	servers := []struct {
		name string
		srv  *Server
		key  string
	}{
		{"bare", writer, ""},
		{"traced_1pct_unsampled", traced, ""},
		{"replica_installed_epoch", replica, ""},
		{"authenticated_tenant_view", authed, "ak_zero_alloc"},
	}
	for _, tc := range servers {
		t.Run(tc.name, func(t *testing.T) {
			h := tc.srv.Handler()
			req := httptest.NewRequest(http.MethodGet,
				"/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99", nil)
			if tc.key != "" {
				req.Header.Set("Authorization", "Bearer "+tc.key)
			}
			rec := httptest.NewRecorder()
			// AllocsPerRun's warm-up call absorbs the recorder's one-time header
			// snapshot; Body.Reset keeps the buffer capacity across runs.
			allocs := testing.AllocsPerRun(200, func() {
				rec.Body.Reset()
				h.ServeHTTP(rec, req)
			})
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d", rec.Code)
			}
			if allocs != 0 {
				t.Errorf("cached GET allocated %.1f times per request, want 0", allocs)
			}
			if hdr := rec.Header().Get(requestIDHeader); tc.srv.cfg.Tracer != nil && hdr != "" {
				t.Errorf("unsampled traced GET stamped X-Request-Id %q; correlation headers must stay lazy", hdr)
			}
		})
	}
}

// TestFastPathMatchesMarshal asserts the blob fast path is invisible to
// clients: byte-identical bodies to the marshal-per-request baseline, for
// canonical, non-canonical, and percent-escaped request spellings.
func TestFastPathMatchesMarshal(t *testing.T) {
	srv := testServer(t)
	fast := srv.Handler()
	slow := srv.MarshalHandler()
	targets := []string{
		"/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99",
		"/v1/predictions?zone=us-east-1b&type=c4.large", // default probability
		"/v1/predictions?zone=us-west-1a&type=c3.2xlarge&probability=0.95",
		"/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.990",  // non-canonical spelling
		"/v1/predictions?zone=us-east-1%62&type=c4.large&probability=0.99", // escaped -> slow parse
		"/v1/predictions?zone=nowhere-1x&type=c4.large",                    // 404 on both paths
		"/v1/predictions?zone=us-east-1b&type=c4.large&probability=2",      // 400 on both paths
		"/v1/combos",
	}
	for _, target := range targets {
		fastCode, _, fastBody := getBody(t, fast, target)
		slowCode, _, slowBody := getBody(t, slow, target)
		if fastCode != slowCode {
			t.Errorf("%s: fast status %d, marshal status %d", target, fastCode, slowCode)
		}
		if !bytes.Equal(fastBody, slowBody) {
			t.Errorf("%s: bodies differ:\nfast:    %s\nmarshal: %s", target, fastBody, slowBody)
		}
	}
}

func TestETagNotModified(t *testing.T) {
	srv := testServer(t)
	h := srv.Handler()
	target := "/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99"
	code, hdr, body := getBody(t, h, target)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	etag := hdr.Get("Etag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing or unquoted ETag %q", etag)
	}
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatal("body must end with newline (json.Encoder compatibility)")
	}

	for _, match := range []string{etag, "*", `"zzz", ` + etag} {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		req.Header.Set("If-None-Match", match)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", match, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("If-None-Match %q: 304 carried a body", match)
		}
	}

	req := httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("If-None-Match", `"stale"`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", rec.Code)
	}

	// A refresh is a new epoch: the old ETag must stop matching.
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("post-refresh revalidation: status %d, want 200", rec.Code)
	}
	if rec.Header().Get("Etag") == etag {
		t.Error("refresh did not change the ETag")
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	tables, err := cl.Tables(testCombos, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(testCombos) {
		t.Fatalf("%d tables, want %d", len(tables), len(testCombos))
	}
	for i, tj := range tables {
		if tj.Zone != string(testCombos[i].Zone) || tj.InstanceType != string(testCombos[i].Type) {
			t.Errorf("table %d is %s/%s, want %s (request order must be preserved)",
				i, tj.Zone, tj.InstanceType, testCombos[i])
		}
		if tj.Probability != 0.95 {
			t.Errorf("table %d probability %v", i, tj.Probability)
		}
		if len(tj.Points) == 0 {
			t.Errorf("table %d empty", i)
		}
	}

	// The batch must carry the same epoch ETag and honour If-None-Match.
	h := srv.Handler()
	target := "/v1/tables?combos=us-east-1b/c4.large,us-east-1c/c4.large"
	code, hdr, _ := getBody(t, h, target)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	etag := hdr.Get("Etag")
	req := httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Errorf("batch If-None-Match: status %d, want 304", rec.Code)
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	srv := testServer(t)
	h := srv.Handler()
	cases := []struct {
		target string
		want   int
	}{
		{"/v1/tables", http.StatusBadRequest},
		{"/v1/tables?combos=", http.StatusBadRequest},
		{"/v1/tables?combos=us-east-1b", http.StatusBadRequest}, // no slash
		{"/v1/tables?combos=us-east-1b/c4.large&probability=2", http.StatusBadRequest},
		{"/v1/tables?combos=us-east-1b/c4.large&probability=abc", http.StatusBadRequest},
		// All-or-nothing: one unknown combo fails the whole batch.
		{"/v1/tables?combos=us-east-1b/c4.large,nowhere-9z/c4.large", http.StatusNotFound},
		{"/v1/tables?combos=" + strings.Repeat("us-east-1b/c4.large,", maxBatchCombos) + "us-east-1b/c4.large",
			http.StatusBadRequest}, // over the batch cap
	}
	for _, tc := range cases {
		code, _, body := getBody(t, h, tc.target)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.target, code, tc.want, body)
		}
	}

	// Before any refresh there is no blob store: the batch endpoint, which
	// has no marshal fallback, must answer 503.
	empty, err := New(Config{Source: history.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := getBody(t, empty.Handler(), "/v1/tables?combos=a/b")
	if code != http.StatusServiceUnavailable {
		t.Errorf("empty server batch: status %d, want 503", code)
	}
}

// TestIncrementalRefreshEquivalence is the service-level half of the
// incremental invariant: after histories grow by a few ticks, a refresh
// that takes the incremental path serves responses byte-identical to a
// server that computed the same histories from scratch.
func TestIncrementalRefreshEquivalence(t *testing.T) {
	gen := pricegen.Generator{Seed: 31}
	st := history.NewStore()
	if err := gen.Populate(st, testCombos, t0, 9000); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Source: st, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Grow every history by a handful of ticks, deterministically continuing
	// each combo's price process.
	const newTicks = 7
	for _, c := range testCombos {
		tail, err := gen.Continue(c, t0, 9000, newTicks)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range tail.Prices {
			st.Append(c, tail.TimeAt(i), v)
		}
	}

	// The next refresh must actually take the incremental path for the
	// installed predictors.
	key := tableKey{combo: testCombos[0], prob: 0.99}
	srv.mu.RLock()
	old := srv.preds[key]
	srv.mu.RUnlock()
	series, _ := st.Full(testCombos[0])
	want, err := (core.Params{Probability: 0.99, MaxHistory: 9000}).WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if srv.extendPredictor(old, want, series) == nil {
		t.Fatal("extendPredictor declined the incremental path")
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}

	// A from-scratch server over the identical grown store.
	fresh, err := New(Config{Source: st, MaxHistory: 9000, IncrementalMaxTicks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Refresh(); err != nil {
		t.Fatal(err)
	}

	hInc, hFull := srv.Handler(), fresh.Handler()
	for _, c := range testCombos {
		for _, prob := range []float64{0.95, 0.99} {
			target := fmt.Sprintf("/v1/predictions?zone=%s&type=%s&probability=%v", c.Zone, c.Type, prob)
			codeI, _, bodyI := getBody(t, hInc, target)
			codeF, _, bodyF := getBody(t, hFull, target)
			if codeI != http.StatusOK || codeF != http.StatusOK {
				t.Fatalf("%s: status %d vs %d", target, codeI, codeF)
			}
			if !bytes.Equal(bodyI, bodyF) {
				t.Errorf("%s: incremental refresh served different bytes than full recompute:\nincremental: %s\nfull:        %s",
					target, bodyI, bodyF)
			}
		}
	}
}

// TestExtendPredictorDeclines pins the guard conditions under which the
// incremental path must fall back to a full recompute.
func TestExtendPredictorDeclines(t *testing.T) {
	srv := testServer(t)
	key := tableKey{combo: testCombos[0], prob: 0.99}
	srv.mu.RLock()
	old := srv.preds[key]
	srv.mu.RUnlock()
	series, _ := srv.cfg.Source.(*history.Store).Full(testCombos[0])
	want := old.Params()

	if srv.extendPredictor(nil, want, series) != nil {
		t.Error("nil predictor extended")
	}
	other, err := (core.Params{Probability: 0.5, MaxHistory: 9000}).WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if srv.extendPredictor(old, other, series) != nil {
		t.Error("parameter mismatch extended")
	}
	// A series on a different grid (shifted start) must be rejected.
	shifted := &history.Series{Start: series.Start.Add(time.Minute), Step: series.Step, Prices: series.Prices}
	if srv.extendPredictor(old, want, shifted) != nil {
		t.Error("grid-misaligned series extended")
	}
	saved := srv.incrementalMax
	srv.incrementalMax = 0
	if srv.extendPredictor(old, want, series) != nil {
		t.Error("disabled incremental path extended")
	}
	srv.incrementalMax = saved
}

// TestRestoreInstallsBlobs ensures a snapshot restore re-arms the fast
// path: the restored server answers cached GETs from pre-encoded blobs with
// the same ETag epoch it served before the restart.
func TestRestoreInstallsBlobs(t *testing.T) {
	srv := testServer(t)
	target := "/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99"
	_, hdrBefore, bodyBefore := getBody(t, srv.Handler(), target)

	payload, err := srv.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(Config{Source: testStore(t), MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(payload); err != nil {
		t.Fatal(err)
	}
	if restored.blobs.Load() == nil {
		t.Fatal("restore did not install the blob store")
	}
	code, hdr, body := getBody(t, restored.Handler(), target)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !bytes.Equal(body, bodyBefore) {
		t.Error("restored server served different bytes")
	}
	if hdr.Get("Etag") != hdrBefore.Get("Etag") {
		t.Errorf("restored ETag %q != original %q", hdr.Get("Etag"), hdrBefore.Get("Etag"))
	}
}

// TestRawQueryValue pins the zero-allocation query scanner against the
// url.Values ground truth.
func TestRawQueryValue(t *testing.T) {
	cases := []struct {
		q, key, want string
		found        bool
	}{
		{"zone=a&type=b", "zone", "a", true},
		{"zone=a&type=b", "type", "b", true},
		{"zone=a&type=b", "probability", "", false},
		{"type=b&zone=", "zone", "", true},
		{"zone=a", "zon", "", false}, // prefix must not match
		{"zonex=a", "zone", "", false},
		{"azone=a", "zone", "", false},
		{"", "zone", "", false},
		{"zone", "zone", "", false}, // no '=' -> not a pair
	}
	for _, tc := range cases {
		got, found := rawQueryValue(tc.q, tc.key)
		if got != tc.want || found != tc.found {
			t.Errorf("rawQueryValue(%q, %q) = (%q, %v), want (%q, %v)",
				tc.q, tc.key, got, found, tc.want, tc.found)
		}
	}
	if fastQuery("zone=us%2Deast") || fastQuery("a=b+c") {
		t.Error("escaped query accepted by fast path")
	}
	if !fastQuery("zone=us-east-1b&type=c4.large") {
		t.Error("plain query rejected by fast path")
	}
}
