package service

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/spot"
)

// Advise surfaces ride the same epoch lifecycle as the pre-encoded table
// blobs: the writer materializes one per (combo, probability) at refresh,
// they are installed behind the same atomic pointer, shipped to replicas in
// their canonical wire encoding, and rebuilt there bit-identically — so a
// replica's /v1/advise and /v1/fleet answers are byte-for-byte the
// writer's. This file holds the storage entry, the canonical wire codec,
// and the cross-combo fleet index the /v1/fleet argmin runs over.

// surfaceWireVersion versions the canonical surface encoding below.
const surfaceWireVersion = 1

// surfaceEntry is one stored surface: the lookup structure plus its
// canonical encoding. The encoding — not the in-memory form — is what the
// epoch checksum covers and what ships to replicas, so writer and replica
// hash identical bytes.
type surfaceEntry struct {
	surf *core.AdviseSurface
	enc  []byte
}

// fleetEntry is one row of the per-probability fleet index: a combo and its
// surface, pre-sorted by (zone, type) so /v1/fleet scans deterministically.
type fleetEntry struct {
	zone string
	typ  string
	surf *core.AdviseSurface
}

// encodeSurface renders the canonical wire form:
//
//	byte    version (1)
//	uint64  LE step, nanoseconds
//	uint64  LE probability, IEEE-754 bits
//	uint32  LE entry count n
//	n x (uint32 LE bid tick, uint32 LE guaranteed steps)
func encodeSurface(s *core.AdviseSurface) []byte {
	n := len(s.Bids)
	buf := make([]byte, 0, 1+8+8+4+8*n)
	buf = append(buf, surfaceWireVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Step))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Probability))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, s.Bids[i])
		buf = binary.LittleEndian.AppendUint32(buf, s.Guar[i])
	}
	return buf
}

// decodeSurface rebuilds a surface from its canonical wire form,
// re-running the core validations so a corrupt or adversarial payload
// cannot install a malformed lookup structure.
func decodeSurface(p []byte) (*core.AdviseSurface, error) {
	const header = 1 + 8 + 8 + 4
	if len(p) < header {
		return nil, fmt.Errorf("service: surface payload truncated (%d bytes)", len(p))
	}
	if p[0] != surfaceWireVersion {
		return nil, fmt.Errorf("service: unsupported surface version %d", p[0])
	}
	step := time.Duration(binary.LittleEndian.Uint64(p[1:9]))
	prob := math.Float64frombits(binary.LittleEndian.Uint64(p[9:17]))
	n := int(binary.LittleEndian.Uint32(p[17:21]))
	if len(p) != header+8*n {
		return nil, fmt.Errorf("service: surface payload length %d does not match %d entries", len(p), n)
	}
	bids := make([]uint32, n)
	guar := make([]uint32, n)
	for i := 0; i < n; i++ {
		off := header + 8*i
		bids[i] = binary.LittleEndian.Uint32(p[off : off+4])
		guar[i] = binary.LittleEndian.Uint32(p[off+4 : off+8])
	}
	return core.NewAdviseSurface(prob, step, bids, guar)
}

// buildSurfaces materializes one surface per table whose predictor is
// available. Combos without a predictor (replica-built epochs use
// NewEpochFull instead; a writer always has them) simply get no surface —
// their advise requests fall back to the scan path.
func buildSurfaces(tables map[tableKey]core.BidTable, preds map[tableKey]*core.Predictor) map[blobKey]*surfaceEntry {
	if len(preds) == 0 {
		return nil
	}
	surfaces := make(map[blobKey]*surfaceEntry, len(tables))
	for k := range tables {
		pred := preds[k]
		if pred == nil {
			continue
		}
		surf, ok := pred.Surface()
		if !ok {
			continue
		}
		surfaces[blobKey{
			zone: string(k.combo.Zone),
			typ:  string(k.combo.Type),
			prob: probKey(k.prob),
		}] = &surfaceEntry{surf: surf, enc: encodeSurface(surf)}
	}
	if len(surfaces) == 0 {
		return nil
	}
	return surfaces
}

// buildFleetIndex groups surfaces by probability spelling and sorts each
// group by (zone, type), the deterministic scan order /v1/fleet pages over.
func buildFleetIndex(surfaces map[blobKey]*surfaceEntry) map[string][]fleetEntry {
	if len(surfaces) == 0 {
		return nil
	}
	idx := make(map[string][]fleetEntry)
	for k, se := range surfaces {
		idx[k.prob] = append(idx[k.prob], fleetEntry{zone: k.zone, typ: k.typ, surf: se.surf})
	}
	for prob, list := range idx {
		sort.Slice(list, func(i, j int) bool {
			if list[i].zone != list[j].zone {
				return list[i].zone < list[j].zone
			}
			return list[i].typ < list[j].typ
		})
		idx[prob] = list
	}
	return idx
}

// attachSurfaces installs a surface set (and its fleet index) into an
// epoch under construction, charging the canonical encodings to the
// epoch's byte gauge.
func (et *encodedTables) attachSurfaces(surfaces map[blobKey]*surfaceEntry) {
	et.surfaces = surfaces
	et.fleet = buildFleetIndex(surfaces)
	for _, se := range surfaces {
		et.bytes += len(se.enc)
	}
}

// lookupSurface resolves a (zone, type, probability-string) triple to its
// surface, canonicalizing non-canonical probability spellings on miss,
// exactly like lookupBlob.
func (et *encodedTables) lookupSurface(zone, typ, prob string) (*core.AdviseSurface, bool) {
	if se, ok := et.surfaces[blobKey{zone: zone, typ: typ, prob: prob}]; ok {
		return se.surf, true
	}
	if f, err := strconv.ParseFloat(prob, 64); err == nil {
		if se, ok := et.surfaces[blobKey{zone: zone, typ: typ, prob: probKey(f)}]; ok {
			return se.surf, true
		}
	}
	return nil, false
}

// surfaceComboString renders the canonical combo spelling used in advise
// error messages, matching spot.Combo.String.
func surfaceComboString(zone, typ string) string {
	return spot.Combo{Zone: spot.Zone(zone), Type: spot.InstanceType(typ)}.String()
}
