package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/faults"
	"github.com/drafts-go/drafts/internal/resilience"
)

// chaosGet performs one in-process GET and returns the recorder.
func chaosGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestChaosRefreshOutageServesStale walks the whole degradation arc with
// an injected refresh outage: last-good tables keep serving byte-identical,
// then age into marked-stale responses, then past MaxStaleness into
// 503/stale refusals — and a recovered refresh restores byte-identical
// fresh serving.
func TestChaosRefreshOutageServesStale(t *testing.T) {
	fs := faults.New(1)
	srv, err := New(Config{
		Source:       testStore(t),
		MaxHistory:   9000,
		RefreshEvery: time.Minute,
		MaxStaleness: 10 * time.Minute,
		Faults:       fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	const path = "/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99"

	rec := chaosGet(t, h, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline GET = %d", rec.Code)
	}
	baseline := rec.Body.Bytes()
	if rec.Header().Get(stalenessHeader) != "" {
		t.Fatal("fresh response carries a staleness header")
	}

	// The source goes dark: refresh fails but the last-good epoch serves.
	fs.Enable(faults.Rule{Op: "service.refresh"})
	if err := srv.Refresh(); err == nil {
		t.Fatal("refresh succeeded with the outage fault armed")
	}
	rec = chaosGet(t, h, path)
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), baseline) {
		t.Fatalf("outage GET = %d, body identical = %v; want last-good bytes",
			rec.Code, bytes.Equal(rec.Body.Bytes(), baseline))
	}

	// Age the epoch past two refresh periods: still served, now marked.
	agedAsOf := time.Now().Add(-3 * time.Minute)
	srv.mu.Lock()
	srv.asOf = agedAsOf
	tables := srv.tables
	srv.mu.Unlock()
	srv.installBlobs(tables, nil, agedAsOf)

	rec = chaosGet(t, h, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale GET = %d, want 200 (serve-stale)", rec.Code)
	}
	if got := rec.Header().Get(stalenessHeader); got != "180" {
		t.Errorf("%s = %q, want \"180\"", stalenessHeader, got)
	}
	if !bytes.Equal(rec.Body.Bytes(), baseline) {
		t.Error("stale response bytes differ from last-good epoch")
	}
	var hb healthBody
	if r := chaosGet(t, h, "/healthz"); true {
		if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
			t.Fatal(err)
		}
	}
	if hb.Status != "degraded" || !hb.Stale {
		t.Errorf("healthz during outage = %+v, want degraded and stale", hb)
	}

	// Beyond MaxStaleness the tables are refused: a guarantee computed
	// from hour-old prices is no guarantee.
	ancient := time.Now().Add(-11 * time.Minute)
	srv.mu.Lock()
	srv.asOf = ancient
	srv.mu.Unlock()
	srv.installBlobs(tables, nil, ancient)
	rec = chaosGet(t, h, path)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("beyond-max-staleness GET = %d, want 503", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != codeStale {
		t.Fatalf("refusal body %q, want stale envelope", rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("staleness refusal missing Retry-After")
	}

	// Recovery: the fault clears, the next refresh recomputes from the
	// unchanged history, and serving returns byte-identical to baseline.
	fs.Disable("service.refresh")
	if err := srv.Refresh(); err != nil {
		t.Fatalf("recovery refresh: %v", err)
	}
	rec = chaosGet(t, h, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered GET = %d", rec.Code)
	}
	if rec.Header().Get(stalenessHeader) != "" {
		t.Error("recovered response still marked stale")
	}
	if !bytes.Equal(rec.Body.Bytes(), baseline) {
		t.Error("recovered bytes differ from pre-outage serving (deterministic recompute)")
	}
}

// TestChaosBreakerTripAndRecovery runs the real refresh loop at a tight
// cadence with an injected outage: the breaker must trip after the
// threshold, healthz must report degraded with the breaker open, and a
// successful probe must close it again.
func TestChaosBreakerTripAndRecovery(t *testing.T) {
	fs := faults.New(7)
	srv, err := New(Config{
		Source:            testStore(t),
		MaxHistory:        9000,
		RefreshEvery:      10 * time.Millisecond,
		BreakerThreshold:  2,
		BreakerBackoff:    5 * time.Millisecond,
		BreakerMaxBackoff: 20 * time.Millisecond,
		Faults:            fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	fs.Enable(faults.Rule{Op: "service.refresh"})
	waitForCond(t, 5*time.Second, func() bool {
		return srv.breakerState() == resilience.Open
	})
	var hb healthBody
	r := chaosGet(t, h, "/healthz")
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "degraded" || hb.Breaker != "open" {
		t.Errorf("healthz with breaker open = %+v, want degraded/open", hb)
	}

	fired := fs.Fired("service.refresh")
	if fired < 2 {
		t.Errorf("outage fired %d times, want at least the breaker threshold", fired)
	}
	fs.Disable("service.refresh")
	waitForCond(t, 5*time.Second, func() bool {
		return srv.breakerState() == resilience.Closed
	})
	r = chaosGet(t, h, "/healthz")
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || hb.Breaker != "closed" {
		t.Errorf("healthz after recovery = %+v, want ok/closed", hb)
	}
}

// waitForCond polls until cond holds or the deadline passes.
func waitForCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
