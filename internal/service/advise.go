package service

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/spot"
)

// The advise fast path answers /v1/advise from the epoch's precomputed
// surfaces: a query substring parse, one map lookup, an O(1) grid snap (or
// an O(log n) refinement for off-grid durations), and a pooled-buffer
// write — no predictor scan, no deadline, no allocation. Requests the fast
// parse cannot serve (account mapping, escaped queries, probability levels
// without a surface) fall back to the scan path, which preserves the
// original semantics and bytes exactly; TestAdviseSurfaceScanEquivalence
// holds the two paths byte-identical over randomized trials.

// quoteBuf is the pooled response-assembly buffer for the advise fast
// path. Quotes are ~150 bytes; after warm-up the pooled capacity sticks
// and a cached advise performs zero heap allocations.
type quoteBuf struct {
	b []byte
}

var quoteBufPool = sync.Pool{New: func() any { return &quoteBuf{} }}

// plainJSONSafe reports whether s encodes into a JSON string verbatim
// under encoding/json's rules: printable ASCII with nothing to escape
// (including the <, >, & that json.Encoder HTML-escapes). Anything else
// falls back to the marshalling scan path so fast-path bytes stay
// identical to it.
//
//drafts:nonalloc
func plainJSONSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, scientific notation outside [1e-6, 1e21), and
// no "e-0X" zero-padded exponents.
//
//drafts:nonalloc
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs > 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// adviseFast serves /v1/advise from the installed surfaces when the
// request is fast-parseable and a surface covers it, reporting whether it
// handled the request. The response bytes — success quote, staleness
// refusal, and cannot-guarantee refusal alike — are identical to what the
// scan path would produce over the same epoch.
//
//drafts:nonalloc
func (s *Server) adviseFast(w http.ResponseWriter, r *http.Request) bool {
	et := s.blobs.Load()
	if et == nil || len(et.surfaces) == 0 {
		return false
	}
	q := r.URL.RawQuery
	if !fastQuery(q) {
		return false
	}
	if _, acct := rawQueryValue(q, "account"); acct {
		return false
	}
	zone, _ := rawQueryValue(q, "zone")
	typ, _ := rawQueryValue(q, "type")
	durStr, _ := rawQueryValue(q, "duration")
	if zone == "" || typ == "" || durStr == "" {
		return false
	}
	if !plainJSONSafe(zone) || !plainJSONSafe(typ) {
		return false
	}
	prob, hasProb := rawQueryValue(q, "probability")
	if !hasProb {
		prob = defaultProbKey
	}
	// An account-mapped tenant asks in its obfuscated namespace: translate
	// the visible zone to the physical one for the surface lookup, and
	// render the quote back under the visible name. An unmapped account
	// sees the canonical namespace (matching resolveCombo's lenient
	// fallback); an unknown visible zone falls to the scan path, which
	// renders the authoritative error.
	lookupZone := zone
	if tn := tenantOf(w); tn != nil && tn.Account != "" {
		if m, found := s.cfg.AccountMappings[tn.Account]; found {
			phys, found := m[spot.Zone(zone)]
			if !found {
				return false
			}
			lookupZone = string(phys)
		}
	}
	surf, ok := et.lookupSurface(lookupZone, typ, prob)
	if !ok {
		return false
	}
	d, err := time.ParseDuration(durStr)
	if err != nil || d <= 0 {
		// Let the scan path render the invalid-duration error.
		return false
	}
	if !s.checkStaleness(w, et.asOf) {
		return true
	}
	tr := traceOf(w)
	sp := tr.StartSpan("surface.lookup")
	quote, ok := surf.Lookup(d)
	sp.End()
	if !ok {
		// The refusal names the physical combo, matching the scan path's
		// rendering byte for byte.
		s.writeAdviseRefusal(w, d, lookupZone, typ, surf)
		return true
	}
	wsp := tr.StartSpan("surface.write")
	s.writeAdviseQuote(w, zone, typ, quote)
	wsp.End()
	return true
}

// writeAdviseQuote renders the QuoteJSON success body from a pooled
// buffer, byte-identical to writeJSON(w, 200, QuoteJSON{...}) for the
// plain-JSON-safe strings the fast path admits.
//
//drafts:nonalloc
func (s *Server) writeAdviseQuote(w http.ResponseWriter, zone, typ string, q core.Quote) {
	bb := quoteBufPool.Get().(*quoteBuf)
	b := bb.b[:0]
	b = append(b, `{"zone":"`...)
	b = append(b, zone...)
	b = append(b, `","instance_type":"`...)
	b = append(b, typ...)
	b = append(b, `","probability":`...)
	b = appendJSONFloat(b, q.Probability)
	b = append(b, `,"bid_usd_per_hour":`...)
	b = appendJSONFloat(b, q.Bid)
	b = append(b, `,"guaranteed_duration_seconds":`...)
	b = appendJSONFloat(b, q.Duration.Seconds())
	b = append(b, '}', '\n')
	h := w.Header()
	h["Content-Type"] = jsonCTHeader
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	bb.b = b
	quoteBufPool.Put(bb)
}

// writeAdviseRefusal renders the cannot-guarantee refusal for a surface
// miss. Kept off the annotated fast path: refusals are cold, and the
// variadic error rendering may allocate.
func (s *Server) writeAdviseRefusal(w http.ResponseWriter, d time.Duration, zone, typ string, surf *core.AdviseSurface) {
	writeErr(w, http.StatusConflict, codeNotFound, "cannot guarantee %v on %s: %v",
		d, surfaceComboString(zone, typ), surf.CannotGuarantee(d))
}
