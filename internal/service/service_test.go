package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/spot"
)

var t0 = time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC)

var testCombos = []spot.Combo{
	{Zone: "us-east-1b", Type: "c4.large"},
	{Zone: "us-east-1c", Type: "c4.large"},
	{Zone: "us-west-1a", Type: "c3.2xlarge"},
}

func testStore(t *testing.T) *history.Store {
	t.Helper()
	st := history.NewStore()
	if err := (pricegen.Generator{Seed: 31}).Populate(st, testCombos, t0, 9000); err != nil {
		t.Fatal(err)
	}
	return st
}

func testServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Config{Source: testStore(t), MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(Config{Source: history.NewStore(), Probabilities: []float64{1.5}}); err == nil {
		t.Error("bad probability accepted")
	}
	if _, err := New(Config{Source: history.NewStore(), RefreshEvery: -time.Minute}); err == nil {
		t.Error("negative refresh accepted")
	}
}

func TestHealth(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
		Tables int    `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status %q", body.Status)
	}
	// 3 combos x 2 default probability levels.
	if body.Tables != 6 {
		t.Errorf("tables = %d, want 6", body.Tables)
	}
}

func TestCombosEndpointAndClient(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	combos, err := cl.Combos()
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != len(testCombos) {
		t.Fatalf("%d combos, want %d", len(combos), len(testCombos))
	}
	for i := 1; i < len(combos); i++ {
		a, b := combos[i-1], combos[i]
		if a.Zone > b.Zone || (a.Zone == b.Zone && a.Type >= b.Type) {
			t.Error("combos not sorted")
		}
	}
}

func TestPredictionsEndToEnd(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	combo := testCombos[0]
	table, err := cl.Predictions(combo, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if table.Probability != 0.99 {
		t.Errorf("probability %v", table.Probability)
	}
	if len(table.Points) < 10 {
		t.Fatalf("table has %d points", len(table.Points))
	}
	for i := 1; i < len(table.Points); i++ {
		if table.Points[i].Bid <= table.Points[i-1].Bid {
			t.Fatal("bids not ascending after round trip")
		}
		if table.Points[i].Duration < table.Points[i-1].Duration {
			t.Fatal("durations not monotone after round trip")
		}
	}
	// The common workflow: pick a bid for a one-hour job.
	bid, err := cl.BidFor(combo, 0.99, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if mb, _ := table.MinBid(); bid < mb {
		t.Errorf("BidFor returned %v below table minimum %v", bid, mb)
	}
	// Unguaranteeable duration must error.
	if _, err := cl.BidFor(combo, 0.99, 90*24*time.Hour); err == nil {
		t.Error("impossible duration accepted")
	}
}

func TestPredictionsErrors(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/v1/predictions", // missing params
		"/v1/predictions?zone=us-east-1b&type=c4.large&probability=nope",
		"/v1/predictions?zone=us-east-1b&type=c4.large&probability=2",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/predictions?zone=us-east-1b&type=x9.mega")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown combo -> %d, want 404", resp.StatusCode)
	}

	// The typed client surfaces server errors.
	cl := &Client{BaseURL: ts.URL}
	if _, err := cl.Predictions(spot.Combo{Zone: "nowhere-1a", Type: "c4.large"}, 0.99); err == nil {
		t.Error("client accepted a 404")
	}
}

func TestDefaultProbabilityIs99(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/predictions?zone=us-east-1b&type=c4.large")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tj TableJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	if tj.Probability != 0.99 {
		t.Errorf("default probability %v", tj.Probability)
	}
}

func TestStartRefreshLoop(t *testing.T) {
	store := testStore(t)
	srv, err := New(Config{Source: store, RefreshEvery: 20 * time.Millisecond, MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv.mu.RLock()
	first := srv.asOf
	srv.mu.RUnlock()
	if first.IsZero() {
		t.Fatal("Start did not perform an initial refresh")
	}
	deadline := time.After(2 * time.Second)
	for {
		srv.mu.RLock()
		cur := srv.asOf
		srv.mu.RUnlock()
		if cur.After(first) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no periodic refresh within 2s")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestClientBadBaseURL(t *testing.T) {
	cl := &Client{BaseURL: "http://127.0.0.1:1"} // nothing listens here
	if _, err := cl.Combos(); err == nil {
		t.Error("unreachable server accepted")
	}
	cl2 := &Client{BaseURL: "::bad::"}
	if _, err := cl2.Combos(); err == nil {
		t.Error("malformed base URL accepted")
	}
}

func TestFromJSONRoundTrip(t *testing.T) {
	combo := spot.Combo{Zone: "us-east-1b", Type: "c4.large"}
	orig := core.BidTable{
		At:          t0,
		Probability: 0.95,
		Points: []core.BidPoint{
			{Bid: 0.1, Duration: time.Hour},
			{Bid: 0.2, Duration: 2 * time.Hour},
		},
	}
	tj := toJSON(combo, orig)
	c2, t2 := FromJSON(tj)
	if c2 != combo {
		t.Errorf("combo %v", c2)
	}
	if len(t2.Points) != 2 || t2.Points[1].Duration != 2*time.Hour || t2.Probability != 0.95 {
		t.Errorf("table %+v", t2)
	}
}
