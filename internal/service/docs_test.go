package service

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAPIDocsCoverRegisteredRoutes is the docs-drift gate: every /v1/*
// route registered anywhere in the codebase must appear in API.md. The
// route list is scraped from the source that registers it, so adding an
// endpoint without documenting it fails here (and in the CI grep that
// mirrors this test).
func TestAPIDocsCoverRegisteredRoutes(t *testing.T) {
	sources := []string{
		"service.go",
		filepath.Join("..", "..", "cmd", "draftsd", "main.go"),
		filepath.Join("..", "..", "cmd", "draftsd", "cluster.go"),
	}
	// Matches mux.Handle / mux.HandleFunc route literals with an optional
	// method prefix: "GET /v1/advise", "POST /v1/fleet", "/v1/".
	routeRe := regexp.MustCompile(`mux\.Handle(?:Func)?\("(?:(?:GET|POST|PUT|DELETE|HEAD) )?(/v1/[^"]*)"`)
	routes := map[string]bool{}
	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		for _, m := range routeRe.FindAllStringSubmatch(string(data), -1) {
			route := m[1]
			if route == "/v1/" { // the router's catch-all forward, not an endpoint
				continue
			}
			routes[route] = true
		}
	}
	if len(routes) < 5 {
		t.Fatalf("route scrape found only %d routes (%v); the regex has drifted from the registration style",
			len(routes), routes)
	}

	apiDoc, err := os.ReadFile(filepath.Join("..", "..", "API.md"))
	if err != nil {
		t.Fatalf("reading API.md: %v", err)
	}
	doc := string(apiDoc)
	for route := range routes {
		if !strings.Contains(doc, route) {
			t.Errorf("registered route %s is not documented in API.md", route)
		}
	}
}
