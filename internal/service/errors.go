package service

import (
	"fmt"
	"net/http"
)

// The v1 API reports every error as one uniform JSON envelope:
//
//	{"error":{"code":"...","message":"...","request_id":"..."}}
//
// The code vocabulary is closed — clients switch on it, not on message
// text — and HTTP statuses carry the same meaning they always did; the
// code refines, never contradicts, the status:
//
//	invalid_argument   400        malformed parameters
//	unauthenticated    401        missing, unknown, malformed, or revoked
//	                              API key on a server with a tenant
//	                              registry; WWW-Authenticate is set
//	permission_denied  403        authenticated identity may not use the
//	                              named resource: an ?account= alias that
//	                              does not match the tenant, or an account
//	                              with no zone mapping configured
//	not_found          404, 409   no such table/predictor, or no bid can
//	                              guarantee the requested duration
//	rate_limited       429        the tenant's own token-bucket quota or
//	                              weighted concurrency share refused the
//	                              request; Retry-After and the RateLimit-*
//	                              headers are always set
//	overloaded         503        admission control shed the request or the
//	                              server-side compute budget expired;
//	                              Retry-After is always set
//	stale              503        no tables yet (cold start) or the tables
//	                              aged past the configured max staleness
//	internal           500        handler panic or other server defect
//
// request_id echoes the X-Request-ID the middleware assigned (or the
// caller supplied); it is omitted on bare handlers wired without the
// middleware, e.g. in tests.
const (
	codeInvalidArgument  = "invalid_argument"
	codeUnauthenticated  = "unauthenticated"
	codePermissionDenied = "permission_denied"
	codeNotFound         = "not_found"
	codeRateLimited      = "rate_limited"
	codeOverloaded       = "overloaded"
	codeStale            = "stale"
	codeInternal         = "internal"
)

// errorDetail is the envelope's payload.
type errorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// errorEnvelope is the uniform v1 error body.
type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

// writeErr emits the uniform error envelope. The request ID comes from
// the middleware's statusWriter — materialized from the trace ID at this
// first moment an error needs it when the lazy tracing path withheld it,
// stamping the response headers (X-Request-Id and Traceparent) on the
// way. Handlers never thread it explicitly; bare handlers (no middleware)
// fall back to whatever header a test stamped, usually nothing.
func writeErr(w http.ResponseWriter, status int, code string, format string, args ...any) {
	var rid string
	if sw, ok := w.(*statusWriter); ok {
		rid = sw.requestID()
	} else {
		rid = w.Header().Get(requestIDHeader)
	}
	writeJSON(w, status, errorEnvelope{Error: errorDetail{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: rid,
	}})
}
