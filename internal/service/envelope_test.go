package service

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
)

// TestErrorEnvelopeGolden pins the exact error bytes every /v1 endpoint
// emits: one uniform envelope, a closed code vocabulary, and — on a bare
// handler with no middleware — no request_id field at all. These are
// golden tests on purpose: clients switch on these bytes.
func TestErrorEnvelopeGolden(t *testing.T) {
	srv := testServer(t)
	cold, err := New(Config{Source: testStore(t), MaxHistory: 9000})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		srv     *Server
		path    string
		status  int
		body    string
		headers map[string]string
	}{
		{
			name:   "predictions missing params",
			srv:    srv,
			path:   "/v1/predictions",
			status: http.StatusBadRequest,
			body:   `{"error":{"code":"invalid_argument","message":"zone and type are required"}}` + "\n",
		},
		{
			name:   "predictions unknown combo",
			srv:    srv,
			path:   "/v1/predictions?zone=mars-1a&type=c4.large",
			status: http.StatusNotFound,
			body:   `{"error":{"code":"not_found","message":"no table for mars-1a/c4.large at probability 0.99"}}` + "\n",
		},
		{
			name:   "predictions unknown account",
			srv:    srv,
			path:   "/v1/predictions?zone=us-east-1b&type=c4.large&account=ghost",
			status: http.StatusForbidden,
			body:   `{"error":{"code":"permission_denied","message":"no zone mapping configured for account \"ghost\""}}` + "\n",
		},
		{
			name:   "tables missing combos",
			srv:    srv,
			path:   "/v1/tables",
			status: http.StatusBadRequest,
			body:   `{"error":{"code":"invalid_argument","message":"combos is required (comma-separated zone/type pairs)"}}` + "\n",
		},
		{
			name:   "tables malformed combo",
			srv:    srv,
			path:   "/v1/tables?combos=oops",
			status: http.StatusBadRequest,
			body:   `{"error":{"code":"invalid_argument","message":"combo \"oops\" must be zone/type"}}` + "\n",
		},
		{
			name:   "tables unknown combo",
			srv:    srv,
			path:   "/v1/tables?combos=mars-1a/c4.large",
			status: http.StatusNotFound,
			body:   `{"error":{"code":"not_found","message":"no table for mars-1a/c4.large at probability 0.99"}}` + "\n",
		},
		{
			name:   "tables bad probability",
			srv:    srv,
			path:   "/v1/tables?combos=us-east-1b/c4.large&probability=2",
			status: http.StatusBadRequest,
			body:   `{"error":{"code":"invalid_argument","message":"invalid probability \"2\""}}` + "\n",
		},
		{
			name:   "advise missing duration",
			srv:    srv,
			path:   "/v1/advise?zone=us-east-1b&type=c4.large",
			status: http.StatusBadRequest,
			body:   `{"error":{"code":"invalid_argument","message":"duration is required (e.g. 2h30m)"}}` + "\n",
		},
		{
			name:   "advise invalid duration",
			srv:    srv,
			path:   "/v1/advise?zone=us-east-1b&type=c4.large&duration=yesterday",
			status: http.StatusBadRequest,
			body:   `{"error":{"code":"invalid_argument","message":"invalid duration \"yesterday\""}}` + "\n",
		},
		{
			name:   "cold start tables",
			srv:    cold,
			path:   "/v1/tables?combos=us-east-1b/c4.large",
			status: http.StatusServiceUnavailable,
			body:   `{"error":{"code":"stale","message":"no tables computed yet"}}` + "\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", tc.path, nil)
			rec := httptest.NewRecorder()
			tc.srv.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			if got := rec.Body.String(); got != tc.body {
				t.Errorf("body = %q\nwant   %q", got, tc.body)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
		})
	}
}

// TestRequestIDPropagation covers the middleware path: an inbound
// X-Request-Id is echoed on the response and inside the error envelope; a
// request without one gets a generated hex ID.
func TestRequestIDPropagation(t *testing.T) {
	srv, err := New(Config{Source: testStore(t), MaxHistory: 9000, MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	req := httptest.NewRequest("GET", "/v1/predictions", nil)
	req.Header.Set("X-Request-Id", "gateway-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "gateway-7" {
		t.Errorf("response header X-Request-Id = %q, want gateway-7", got)
	}
	want := `{"error":{"code":"invalid_argument","message":"zone and type are required","request_id":"gateway-7"}}` + "\n"
	if got := rec.Body.String(); got != want {
		t.Errorf("body = %q\nwant   %q", got, want)
	}

	// No inbound ID: one is assigned (16 hex chars) and echoed.
	req = httptest.NewRequest("GET", "/v1/predictions", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	id := rec.Header().Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("generated request ID %q, want 16 hex chars", id)
	}

	// A hostile oversized inbound ID is truncated, not copied wholesale.
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	req = httptest.NewRequest("GET", "/v1/predictions", nil)
	req.Header.Set("X-Request-Id", string(long))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); len(got) != maxRequestIDLen {
		t.Errorf("oversized inbound ID echoed at %d chars, want %d", len(got), maxRequestIDLen)
	}
}

// TestPanicContainment: a panicking handler inside the middleware becomes
// a 500 internal envelope instead of a connection reset.
func TestPanicContainment(t *testing.T) {
	srv, err := New(Config{Source: testStore(t), MaxHistory: 9000, MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	h := srv.wrap(mux)
	req := httptest.NewRequest("GET", "/v1/boom", nil)
	req.Header.Set("X-Request-Id", "p-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	want := `{"error":{"code":"internal","message":"internal error","request_id":"p-1"}}` + "\n"
	if got := rec.Body.String(); got != want {
		t.Errorf("body = %q\nwant   %q", got, want)
	}
}
