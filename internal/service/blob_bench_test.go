package service

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/pricegen"
)

// benchHistory populates the same three-combo store the tests use, without
// requiring a *testing.T.
func benchHistory() (*history.Store, error) {
	st := history.NewStore()
	err := (pricegen.Generator{Seed: 31}).Populate(st, testCombos, t0, 9000)
	return st, err
}

// benchServer builds a refreshed server once per benchmark binary.
func benchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := New(Config{Source: benchStore(b), MaxHistory: 9000})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		b.Fatal(err)
	}
	return srv
}

func benchStore(b *testing.B) Source {
	b.Helper()
	st, err := benchHistory()
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func serveLoop(b *testing.B, h http.Handler, target string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Body.Reset()
		h.ServeHTTP(rec, req)
	}
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d", rec.Code)
	}
}

// BenchmarkPredictionsEncoded measures the pre-encoded fast path: the
// handler the production Handler serves cached single-table GETs through.
func BenchmarkPredictionsEncoded(b *testing.B) {
	srv := benchServer(b)
	serveLoop(b, srv.Handler(), "/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99")
}

// BenchmarkPredictionsMarshal measures the pre-blob-store baseline, which
// re-marshals the table from the core representation on every request. The
// ratio against BenchmarkPredictionsEncoded is the serving speedup recorded
// in BENCH_serving.json.
func BenchmarkPredictionsMarshal(b *testing.B) {
	srv := benchServer(b)
	serveLoop(b, srv.MarshalHandler(), "/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99")
}

// BenchmarkCombosEncoded measures the pre-encoded combo listing.
func BenchmarkCombosEncoded(b *testing.B) {
	srv := benchServer(b)
	serveLoop(b, srv.Handler(), "/v1/combos")
}

// BenchmarkBatchTables3 measures the batch endpoint fetching three tables
// in one request.
func BenchmarkBatchTables3(b *testing.B) {
	srv := benchServer(b)
	serveLoop(b, srv.Handler(),
		"/v1/tables?combos=us-east-1b/c4.large,us-east-1c/c4.large,us-west-1a/c3.2xlarge&probability=0.99")
}

// BenchmarkNotModified measures conditional-GET revalidation: the 304 path
// a well-behaved caching client hits between refreshes.
func BenchmarkNotModified(b *testing.B) {
	srv := benchServer(b)
	h := srv.Handler()
	target := "/v1/predictions?zone=us-east-1b&type=c4.large&probability=0.99"
	probe := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, probe)
	etag := rec.Header().Get("Etag")
	if etag == "" {
		b.Fatal("no ETag")
	}
	req := httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("If-None-Match", etag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Body.Reset()
		h.ServeHTTP(rec, req)
	}
}

// BenchmarkRefreshFull and BenchmarkRefreshIncremental bracket the refresh
// cost: full recompute of every window versus clone + no new ticks.
func BenchmarkRefreshFull(b *testing.B) {
	srv, err := New(Config{Source: benchStore(b), MaxHistory: 9000, IncrementalMaxTicks: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefreshIncremental(b *testing.B) {
	srv := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}
