package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/obfuscate"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/trace"
)

// The serving hot path is allocation-free: every bid table is JSON-encoded
// once per refresh into an immutable encodedTables value that the handlers
// read through an atomic pointer. A cached GET is then a substring scan of
// the raw query, one map lookup, two preallocated header writes, and a
// single w.Write of the stored blob — no per-request marshalling, no
// url.Values, no []byte churn. The zero-allocation property is enforced by
// TestCachedGetZeroAllocs via testing.AllocsPerRun.

// maxBatchCombos caps how many combos one /v1/tables request may ask for,
// bounding response size and validation work.
const maxBatchCombos = 512

// defaultProbKey is the canonical spelling of the default probability
// level, matching probKey(0.99).
const defaultProbKey = "0.99"

// Preallocated header values, assigned into the response header map
// directly so the hot path never allocates a fresh []string per request.
var (
	jsonCTHeader = []string{"application/json"}
	newline      = []byte("\n")
	openBracket  = []byte("[")
	closeBracket = []byte("]\n")
	comma        = []byte(",")
)

// blobKey addresses one pre-encoded table by the exact strings a request
// carries, so lookups work on substrings of the raw query without
// conversions.
type blobKey struct {
	zone, typ, prob string
}

// encodedTables is one refresh epoch's immutable pre-encoded serving state.
// It is built once per refresh (or snapshot restore) and installed with an
// atomic pointer swap; handlers treat every byte as read-only.
type encodedTables struct {
	seq    uint64 // epoch sequence number, for replication ordering
	asOf   time.Time
	etag   string   // strong ETag derived from the refresh epoch, quoted
	etagH  []string // preallocated header value: []string{etag}
	tables map[blobKey][]byte
	combos []byte // pre-encoded /v1/combos response body (no trailing newline)
	bytes  int    // total pre-encoded payload bytes, for the gauge

	// surfaces holds the precomputed advise surfaces (surface.go), nil on
	// epochs built without predictors (legacy NewEpoch wire rebuilds);
	// fleet indexes them per probability spelling for /v1/fleet. Advise
	// requests on a surface-less epoch fall back to the scan path.
	surfaces map[blobKey]*surfaceEntry
	fleet    map[string][]fleetEntry

	// views holds the per-permutation-class tenant variants of every table
	// blob: the same body with the zone field renamed to each sibling zone
	// the physical zone could appear as under some account's obfuscation
	// mapping. An authenticated tenant's cached GET is then one mapping
	// lookup plus one views lookup — no per-request rewrite, no
	// allocation. Nil unless the server has account-mapped tenants
	// (buildViews); requests views cannot serve fall back to the marshal
	// path.
	views map[viewKey][]byte

	// combosViews holds the per-account /v1/combos listing with every
	// zone renamed to the account's visible name and the list re-sorted
	// in that namespace, so a mapped tenant's combo discovery round-trips
	// into its /v1/predictions and /v1/tables requests. Keyed by account;
	// accounts whose mapping is the identity over the served zones alias
	// the canonical body. Built alongside views.
	combosViews map[string][]byte
}

// viewKey addresses one tenant-view variant: the physical table identity
// plus the visible zone name the body answers under. The physical zone is
// part of the key because two accounts may both see "us-east-1b" while
// meaning different physical zones.
type viewKey struct {
	phys, visible, typ, prob string
}

// probKey formats a probability level the way the service addresses blobs:
// the shortest round-trip representation, which matches how clients
// naturally spell query values ("0.99", "0.95").
func probKey(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// epochETag derives the strong ETag for a refresh epoch: a hash of the
// installation time and table count. Tables only change when a refresh (or
// snapshot restore) installs a new epoch, so the epoch identifies the
// content; a restored snapshot carries its original asOf and therefore
// revalidates against the same ETag it served before the restart.
func epochETag(asOf time.Time, n int) string {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(asOf.UnixNano()))
	binary.LittleEndian.PutUint64(buf[8:], uint64(n))
	_, _ = h.Write(buf[:])
	return `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// encodeTables pre-encodes every table, the combo listing, and the
// advise surfaces for one epoch. Prebuilt surfaces may be passed in (the
// refresh path builds them before stamping asOf, so surface construction
// time doesn't age the epoch); nil surfaces are derived from preds here.
func encodeTables(tables map[tableKey]core.BidTable, preds map[tableKey]*core.Predictor, surfaces map[blobKey]*surfaceEntry, asOf time.Time) (*encodedTables, error) {
	et := &encodedTables{
		asOf:   asOf,
		etag:   epochETag(asOf, len(tables)),
		tables: make(map[blobKey][]byte, len(tables)),
	}
	et.etagH = []string{et.etag}
	seen := make(map[spot.Combo]bool)
	for k, table := range tables {
		body, err := json.Marshal(toJSON(k.combo, table))
		if err != nil {
			return nil, fmt.Errorf("service: encoding table for %s/p=%v: %w", k.combo, k.prob, err)
		}
		et.tables[blobKey{
			zone: string(k.combo.Zone),
			typ:  string(k.combo.Type),
			prob: probKey(k.prob),
		}] = body
		et.bytes += len(body)
		seen[k.combo] = true
	}
	list := make([]comboJSON, 0, len(seen))
	for c := range seen {
		list = append(list, comboJSON{Zone: string(c.Zone), InstanceType: string(c.Type)})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Zone != list[j].Zone {
			return list[i].Zone < list[j].Zone
		}
		return list[i].InstanceType < list[j].InstanceType
	})
	combos, err := json.Marshal(list)
	if err != nil {
		return nil, fmt.Errorf("service: encoding combo list: %w", err)
	}
	et.combos = combos
	et.bytes += len(combos)
	if surfaces == nil {
		surfaces = buildSurfaces(tables, preds)
	}
	et.attachSurfaces(surfaces)
	return et, nil
}

// zoneFieldPrefix is how every table body begins: Zone is TableJSON's
// first field, which is what lets buildViews rename it by prefix
// replacement without reparsing the JSON.
const zoneFieldPrefix = `{"zone":"`

// buildViews precomputes the tenant-view variants of every table blob: for
// each physical zone, one body per sibling zone in its region with the
// zone field renamed (the identity variant aliases the original bytes).
// Obfuscation mappings are region-preserving bijections, so the sibling
// set covers every name any account could address the table by; the
// blowup is bounded by the region's zone count (<= 5). Renamed bodies are
// byte-identical to what the marshal path produces for the same request —
// TestTenantViewMatchesMarshal holds the two paths together.
func (et *encodedTables) buildViews() {
	zones := make(map[string][]spot.Zone) // region -> sibling zones, cached
	views := make(map[viewKey][]byte, 4*len(et.tables))
	for k, body := range et.tables {
		region := string(spot.Zone(k.zone).Region())
		siblings, ok := zones[region]
		if !ok {
			siblings = spot.ZonesOf(spot.Region(region))
			zones[region] = siblings
		}
		for _, vis := range siblings {
			vk := viewKey{phys: k.zone, visible: string(vis), typ: k.typ, prob: k.prob}
			if string(vis) == k.zone {
				views[vk] = body
				continue
			}
			renamed := bytes.Replace(body,
				[]byte(zoneFieldPrefix+k.zone+`"`),
				[]byte(zoneFieldPrefix+string(vis)+`"`), 1)
			views[vk] = renamed
			et.bytes += len(renamed)
		}
	}
	et.views = views
}

// buildCombosViews precomputes each mapped account's /v1/combos body: the
// served combo list with physical zones renamed to the account's visible
// names (the inverse of its visible->physical mapping) and re-sorted in
// the visible namespace, so a mapped tenant's combo discovery round-trips
// into its /v1/predictions and /v1/tables requests. Accounts whose
// renaming is the identity over the served zones alias the canonical body.
func (et *encodedTables) buildCombosViews(mappings map[string]obfuscate.Mapping) {
	if len(mappings) == 0 {
		return
	}
	seen := make(map[spot.Combo]bool, len(et.tables))
	for k := range et.tables {
		seen[spot.Combo{Zone: spot.Zone(k.zone), Type: spot.InstanceType(k.typ)}] = true
	}
	out := make(map[string][]byte, len(mappings))
	for account, m := range mappings {
		inv := make(map[spot.Zone]spot.Zone, len(m))
		for vis, phys := range m {
			inv[phys] = vis
		}
		list := make([]comboJSON, 0, len(seen))
		identity := true
		for c := range seen {
			vis, ok := inv[c.Zone]
			if !ok {
				vis = c.Zone
			}
			if vis != c.Zone {
				identity = false
			}
			list = append(list, comboJSON{Zone: string(vis), InstanceType: string(c.Type)})
		}
		if identity {
			out[account] = et.combos
			continue
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Zone != list[j].Zone {
				return list[i].Zone < list[j].Zone
			}
			return list[i].InstanceType < list[j].InstanceType
		})
		body, err := json.Marshal(list)
		if err != nil {
			continue // unreachable for these types; canonical fallback
		}
		out[account] = body
		et.bytes += len(body)
	}
	et.combosViews = out
}

// tenantViewsEnabled reports whether this server must precompute
// per-tenant zone views: it has account-mapped tenants and mappings to
// translate them with.
func (s *Server) tenantViewsEnabled() bool {
	return s.tenants != nil && s.tenants.HasAccounts() && len(s.cfg.AccountMappings) > 0
}

// installBlobs encodes and atomically publishes the epoch's blob store.
// The caller must install the matching tables map under s.mu around the
// same time; an encoding failure publishes a nil store, which sends every
// read to the marshal-per-request fallback rather than serving stale bytes.
func (s *Server) installBlobs(tables map[tableKey]core.BidTable, preds map[tableKey]*core.Predictor, asOf time.Time) {
	s.installBlobsTraced(tables, preds, nil, asOf, nil)
}

// installBlobsTraced is installBlobs with the refresh cycle's trace: the
// pre-encoding pass gets its own blob.encode span. Snapshot restores pass
// a nil trace (and nil surfaces, derived from preds).
func (s *Server) installBlobsTraced(tables map[tableKey]core.BidTable, preds map[tableKey]*core.Predictor, surfaces map[blobKey]*surfaceEntry, asOf time.Time, tr *trace.Trace) {
	began := time.Now()
	sp := tr.StartSpan("blob.encode")
	et, err := encodeTables(tables, preds, surfaces, asOf)
	sp.EndErr(err)
	if err != nil {
		s.logger.Error("encoding blob store failed; serving via marshal fallback", "err", err)
		s.blobs.Store(nil)
		s.metrics.blobBytes.Set(0)
		return
	}
	if s.tenantViewsEnabled() {
		vsp := tr.StartSpan("blob.views")
		et.buildViews()
		et.buildCombosViews(s.cfg.AccountMappings)
		vsp.End()
	}
	et.seq = s.epochSeq.Add(1)
	s.blobs.Store(et)
	s.metrics.blobBytes.Set(float64(et.bytes))
	s.metrics.encodeDuration.Observe(time.Since(began).Seconds())
	if hook := s.cfg.OnEpoch; hook != nil {
		hook(&Epoch{et: et})
	}
}

// fastQuery reports whether the raw query can be read by plain substring
// extraction: any percent-escape or '+' forces the url.Values slow path.
//
//drafts:nonalloc
func fastQuery(q string) bool {
	for i := 0; i < len(q); i++ {
		if q[i] == '%' || q[i] == '+' {
			return false
		}
	}
	return true
}

// rawQueryValue extracts the value of key from an unescaped raw query
// without allocating: the result is a substring of q.
//
//drafts:nonalloc
func rawQueryValue(q, key string) (val string, found bool) {
	for len(q) > 0 {
		var pair string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			pair, q = q, ""
		}
		if len(pair) > len(key) && pair[len(key)] == '=' && pair[:len(key)] == key {
			return pair[len(key)+1:], true
		}
	}
	return "", false
}

// etagMatches implements the If-None-Match comparison against the epoch's
// strong ETag. Comma-separated candidate lists are honoured by substring
// search — every stored ETag is a quoted hash, so false positives cannot
// occur — and "*" matches any current representation.
//
//drafts:nonalloc
func etagMatches(header, etag string) bool {
	return header == "*" || strings.Contains(header, etag)
}

// writeBlob serves one pre-encoded body with ETag revalidation. The blob
// must not include its trailing newline; writeBlob appends it so responses
// stay byte-identical with the json.Encoder output of the marshal path.
// The serve-stale policy applies first: a degraded epoch is marked with
// X-Drafts-Staleness, and one beyond MaxStaleness is refused — both off
// the fresh-epoch fast path, which stays allocation-free.
//
//drafts:nonalloc
func (s *Server) writeBlob(w http.ResponseWriter, r *http.Request, et *encodedTables, body []byte) {
	if !s.checkStaleness(w, et.asOf) {
		return
	}
	h := w.Header()
	h["Etag"] = et.etagH
	h["Content-Type"] = jsonCTHeader
	if m := r.Header.Get("If-None-Match"); m != "" && etagMatches(m, et.etag) {
		s.metrics.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	_, _ = w.Write(newline)
}

// lookupBlob resolves a (zone, type, probability-string) triple to its
// pre-encoded table, canonicalizing non-canonical probability spellings
// ("0.990") on miss.
func (et *encodedTables) lookupBlob(zone, typ, prob string) ([]byte, bool) {
	if b, ok := et.tables[blobKey{zone: zone, typ: typ, prob: prob}]; ok {
		return b, true
	}
	if f, err := strconv.ParseFloat(prob, 64); err == nil {
		if b, ok := et.tables[blobKey{zone: zone, typ: typ, prob: probKey(f)}]; ok {
			return b, true
		}
	}
	return nil, false
}

// handlePredictions serves one bid table. Requests without an account
// parameter hit the pre-encoded blob store — a map lookup and a single
// write, no allocation; an authenticated tenant with an account mapping
// is served its precomputed zone-renamed view the same way (one extra map
// lookup, still no allocation). The explicit ?account= alias and
// spellings the fast parse cannot handle fall back to the marshal path,
// which preserves the service's original semantics (and bytes) exactly.
//
//drafts:nonalloc
func (s *Server) handlePredictions(w http.ResponseWriter, r *http.Request) {
	if et := s.blobs.Load(); et != nil {
		q := r.URL.RawQuery
		if fastQuery(q) {
			if _, acct := rawQueryValue(q, "account"); !acct {
				zone, _ := rawQueryValue(q, "zone")
				typ, _ := rawQueryValue(q, "type")
				prob, hasProb := rawQueryValue(q, "probability")
				if !hasProb {
					prob = defaultProbKey
				}
				if zone != "" && typ != "" {
					tr := traceOf(w)
					sp := tr.StartSpan("blob.lookup")
					var body []byte
					var ok bool
					if tn := tenantOf(w); tn != nil && tn.Account != "" {
						body, ok = s.lookupTenantView(et, tn.Account, zone, typ, prob)
					} else {
						body, ok = et.lookupBlob(zone, typ, prob)
					}
					sp.End()
					if ok {
						wsp := tr.StartSpan("blob.write")
						s.writeBlob(w, r, et, body)
						wsp.End()
						return
					}
				}
			}
		}
	}
	s.handlePredictionsMarshal(w, r)
}

// lookupTenantView resolves an account-mapped tenant's request to its
// precomputed zone-renamed view: the account's mapping translates the
// visible zone to the physical one, and the views map holds the body
// answering under the visible name. A miss (no views built, unmapped
// account, unknown zone/combo) sends the request to the marshal path,
// which renders the authoritative answer — or error — for the same
// request.
func (s *Server) lookupTenantView(et *encodedTables, account, zone, typ, prob string) ([]byte, bool) {
	m, found := s.cfg.AccountMappings[account]
	if !found {
		// Account with no mapping configured: canonical view (matching
		// resolveCombo's lenient fallback).
		return et.lookupBlob(zone, typ, prob)
	}
	if et.views == nil {
		return nil, false
	}
	phys, found := m[spot.Zone(zone)]
	if !found {
		return nil, false
	}
	if b, ok := et.views[viewKey{phys: string(phys), visible: zone, typ: typ, prob: prob}]; ok {
		return b, true
	}
	if f, err := strconv.ParseFloat(prob, 64); err == nil {
		if b, ok := et.views[viewKey{phys: string(phys), visible: zone, typ: typ, prob: probKey(f)}]; ok {
			return b, true
		}
	}
	return nil, false
}

// handleCombos serves the combo listing, pre-encoded when a blob store is
// installed. An account-mapped tenant receives its precomputed zone-view
// listing (combosViews) so discovery round-trips into the other read
// endpoints; either way the response is one map lookup and one write.
//
//drafts:nonalloc
func (s *Server) handleCombos(w http.ResponseWriter, r *http.Request) {
	if et := s.blobs.Load(); et != nil {
		body := et.combos
		if tn := tenantOf(w); tn != nil && tn.Account != "" {
			if vb, ok := et.combosViews[tn.Account]; ok {
				body = vb
			}
		}
		s.writeBlob(w, r, et, body)
		return
	}
	s.handleCombosMarshal(w, r)
}

// handleTables is the batch read endpoint:
//
//	GET /v1/tables?combos=zone/type,zone/type,...&probability=P
//
// It streams the requested combos' pre-encoded tables as a JSON array in
// request order, revalidating the whole batch against the epoch ETag. The
// request is all-or-nothing: every combo is resolved before the first byte
// is written, so a miss is a clean 404 rather than a truncated array.
// Batch consumers address combos by the names /v1/combos listed for them:
// canonical names for anonymous callers, the account's visible zone names
// for a mapped tenant (served from the same precomputed view blobs as
// /v1/predictions, so the renamed bodies cost no per-request rewrite).
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	et := s.blobs.Load()
	if et == nil {
		writeErr(w, http.StatusServiceUnavailable, codeStale, "no tables computed yet")
		return
	}
	viewAccount := ""
	if tn := tenantOf(w); tn != nil && tn.Account != "" {
		viewAccount = tn.Account
	}
	if !s.checkStaleness(w, et.asOf) {
		return
	}
	q := r.URL.RawQuery
	var combosParam, prob string
	if fastQuery(q) {
		combosParam, _ = rawQueryValue(q, "combos")
		prob, _ = rawQueryValue(q, "probability")
	} else {
		vals := r.URL.Query()
		combosParam = vals.Get("combos")
		prob = vals.Get("probability")
	}
	if combosParam == "" {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "combos is required (comma-separated zone/type pairs)")
		return
	}
	if prob == "" {
		prob = defaultProbKey
	} else if f, err := strconv.ParseFloat(prob, 64); err != nil || !(f > 0 && f < 1) {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid probability %q", prob)
		return
	}

	// First pass: resolve every combo before writing anything.
	n := 0
	rest := combosParam
	for rest != "" {
		var part string
		if i := strings.IndexByte(rest, ','); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			part, rest = rest, ""
		}
		zone, typ, ok := strings.Cut(part, "/")
		if !ok || zone == "" || typ == "" {
			writeErr(w, http.StatusBadRequest, codeInvalidArgument, "combo %q must be zone/type", part)
			return
		}
		var found bool
		if viewAccount != "" {
			_, found = s.lookupTenantView(et, viewAccount, zone, typ, prob)
		} else {
			_, found = et.lookupBlob(zone, typ, prob)
		}
		if !found {
			writeErr(w, http.StatusNotFound, codeNotFound, "no table for %s/%s at probability %s", zone, typ, prob)
			return
		}
		n++
		if n > maxBatchCombos {
			writeErr(w, http.StatusBadRequest, codeInvalidArgument, "too many combos (limit %d)", maxBatchCombos)
			return
		}
	}
	s.metrics.batchCombos.Observe(float64(n))

	h := w.Header()
	h["Etag"] = et.etagH
	h["Content-Type"] = jsonCTHeader
	if m := r.Header.Get("If-None-Match"); m != "" && etagMatches(m, et.etag) {
		s.metrics.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(openBracket)
	first := true
	rest = combosParam
	for rest != "" {
		var part string
		if i := strings.IndexByte(rest, ','); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			part, rest = rest, ""
		}
		zone, typ, _ := strings.Cut(part, "/")
		var body []byte
		if viewAccount != "" {
			body, _ = s.lookupTenantView(et, viewAccount, zone, typ, prob)
		} else {
			body, _ = et.lookupBlob(zone, typ, prob)
		}
		if !first {
			_, _ = w.Write(comma)
		}
		first = false
		_, _ = w.Write(body)
	}
	_, _ = w.Write(closeBracket)
}

// handlePredictionsMarshal is the pre-blob-store read path: it re-encodes
// the table from the installed core representation on every request. It
// remains both the fallback for requests the fast path cannot serve
// (account-mapped zones, blob store momentarily absent) and the regression
// baseline that MarshalHandler exposes to draftsbench.
func (s *Server) handlePredictionsMarshal(w http.ResponseWriter, r *http.Request) {
	visible, combo, prob, ok := s.resolveCombo(w, r)
	if !ok {
		return
	}
	table, ok := s.table(combo, prob)
	if !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, "no table for %s at probability %v", combo, prob)
		return
	}
	s.mu.RLock()
	asOf := s.asOf
	s.mu.RUnlock()
	if !s.checkStaleness(w, asOf) {
		return
	}
	// Answer under the client's own zone name.
	writeJSON(w, http.StatusOK, toJSON(spot.Combo{Zone: visible, Type: combo.Type}, table))
}

// handleCombosMarshal is the marshal-per-request combo listing, kept as the
// fallback and benchmarking baseline for handleCombos. It applies the same
// per-account zone renaming as the pre-encoded path.
func (s *Server) handleCombosMarshal(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	seen := make(map[spot.Combo]bool)
	for k := range s.tables {
		seen[k.combo] = true
	}
	asOf := s.asOf
	s.mu.RUnlock()
	if !s.checkStaleness(w, asOf) {
		return
	}
	var inv map[spot.Zone]spot.Zone
	if tn := tenantOf(w); tn != nil && tn.Account != "" {
		if m, found := s.cfg.AccountMappings[tn.Account]; found {
			inv = make(map[spot.Zone]spot.Zone, len(m))
			for vis, phys := range m {
				inv[phys] = vis
			}
		}
	}
	out := make([]comboJSON, 0, len(seen))
	for c := range seen {
		zone := c.Zone
		if vis, ok := inv[zone]; ok {
			zone = vis
		}
		out = append(out, comboJSON{Zone: string(zone), InstanceType: string(c.Type)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Zone != out[j].Zone {
			return out[i].Zone < out[j].Zone
		}
		return out[i].InstanceType < out[j].InstanceType
	})
	writeJSON(w, http.StatusOK, out)
}

// MarshalHandler returns the REST API with the pre-encoded fast path
// disabled: /v1/predictions and /v1/combos marshal JSON from the installed
// tables on every request, and /v1/advise always runs the bid-escalation
// scan, exactly as the service behaved before the blob store and the
// advise surfaces existed. It exists so draftsbench and the Go benchmarks
// can measure the serving fast paths against the historical baseline on
// the same tables (and so the equivalence tests can hold the surface and
// scan paths byte-identical); production traffic uses Handler.
func (s *Server) MarshalHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/combos", s.handleCombosMarshal)
	mux.HandleFunc("GET /v1/predictions", s.handlePredictionsMarshal)
	mux.HandleFunc("GET /v1/advise", s.handleAdviseScan)
	return s.wrap(mux)
}

// blobSnapshotEqual is a test hook: it reports whether the currently
// installed blob for the combo/probability equals body. Unused in
// production paths.
func (s *Server) blobSnapshotEqual(c spot.Combo, prob float64, body []byte) bool {
	et := s.blobs.Load()
	if et == nil {
		return false
	}
	b, ok := et.tables[blobKey{zone: string(c.Zone), typ: string(c.Type), prob: probKey(prob)}]
	return ok && bytes.Equal(b, body)
}
