package service

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/trace"
)

// TestAdviseSurfaceScanEquivalence is the acceptance gate for the advise
// fast path: over randomized (combo, probability, duration) trials the
// surface lookup must answer with exactly the bytes the bid-escalation
// scan produces — same status, same body, successes and refusals alike.
// MarshalHandler rebinds /v1/advise to the scan, so the two handlers
// share one server and one epoch.
func TestAdviseSurfaceScanEquivalence(t *testing.T) {
	srv := testServer(t)
	fast := srv.Handler()
	scan := srv.MarshalHandler()
	rng := rand.New(rand.NewSource(7))
	probs := []float64{0.95, 0.99}

	const trials = 1000
	successes, refusals := 0, 0
	for trial := 0; trial < trials; trial++ {
		combo := testCombos[rng.Intn(len(testCombos))]
		prob := probs[rng.Intn(len(probs))]
		var d time.Duration
		switch trial % 3 {
		case 0: // short off-grid: mostly guaranteeable
			d = time.Duration(1+rng.Intn(300)) * time.Minute
		case 1: // grid-aligned hours
			d = time.Duration(1+rng.Intn(168)) * time.Hour
		default: // long, second-granular tail: mostly refusals
			d = time.Duration(1+rng.Intn(90*24))*time.Hour + time.Duration(rng.Intn(3600))*time.Second
		}
		target := fmt.Sprintf("/v1/advise?zone=%s&type=%s&probability=%v&duration=%s",
			combo.Zone, combo.Type, prob, d)
		fastCode, _, fastBody := getBody(t, fast, target)
		scanCode, _, scanBody := getBody(t, scan, target)
		if fastCode != scanCode || !bytes.Equal(fastBody, scanBody) {
			t.Fatalf("trial %d: %s:\nfast: %d %s\nscan: %d %s",
				trial, target, fastCode, fastBody, scanCode, scanBody)
		}
		if fastCode == http.StatusOK {
			successes++
		} else {
			refusals++
		}
	}
	// The trial mix must exercise both response shapes, or the
	// equivalence proved nothing about one of them.
	if successes == 0 || refusals == 0 {
		t.Fatalf("degenerate trial mix: %d successes, %d refusals", successes, refusals)
	}
}

// TestAdviseFastPathSpellings pins the request spellings that must take
// (or decline) the fast path while staying byte-identical to the scan:
// default probability, non-canonical probability spellings, unknown
// combos, invalid durations, and the account parameter (which forces the
// scan for zone deobfuscation).
func TestAdviseFastPathSpellings(t *testing.T) {
	srv := testServer(t)
	fast := srv.Handler()
	scan := srv.MarshalHandler()
	targets := []string{
		"/v1/advise?zone=us-east-1b&type=c4.large&duration=1h",                    // default probability
		"/v1/advise?zone=us-east-1b&type=c4.large&probability=0.990&duration=1h",  // non-canonical prob
		"/v1/advise?zone=us-east-1%62&type=c4.large&probability=0.99&duration=1h", // escaped -> slow parse
		"/v1/advise?zone=nowhere-1x&type=c4.large&probability=0.99&duration=1h",   // 404 on both
		"/v1/advise?zone=us-east-1b&type=c4.large&probability=0.5&duration=1h",    // unsupported level
		"/v1/advise?zone=us-east-1b&type=c4.large&probability=2&duration=1h",      // 400 on both
		"/v1/advise?zone=us-east-1b&type=c4.large&duration=bogus",                 // 400 on both
		"/v1/advise?zone=us-east-1b&type=c4.large&duration=-2h",                   // 400 on both
		"/v1/advise?zone=us-east-1b&type=c4.large",                                // missing duration
		"/v1/advise?zone=us-east-1b&type=c4.large&duration=1h&account=acct-1",     // account -> scan
	}
	for _, target := range targets {
		fastCode, _, fastBody := getBody(t, fast, target)
		scanCode, _, scanBody := getBody(t, scan, target)
		if fastCode != scanCode || !bytes.Equal(fastBody, scanBody) {
			t.Errorf("%s:\nfast: %d %s\nscan: %d %s", target, fastCode, fastBody, scanCode, scanBody)
		}
	}
}

// TestAdviseFastZeroAllocs extends the serving zero-allocation contract
// to the advise fast path: a surface-served quote performs zero heap
// allocations — on the writer, on a server with tracing configured at
// the production sampling rate, and on a replica serving a rebuilt
// epoch (surfaces included, the way the cluster receiver installs them).
func TestAdviseFastZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	tracer, err := trace.New(trace.Config{SampleRate: 0.01, Seed: 0, Now: time.Now})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(Config{Source: testStore(t), MaxHistory: 9000, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if err := traced.Refresh(); err != nil {
		t.Fatal(err)
	}
	writer := testServer(t)
	wep := writer.CurrentEpoch()
	blobs := make(map[BlobKey][]byte, wep.NumTables())
	for _, k := range wep.Keys() {
		b, _ := wep.Blob(k)
		blobs[k] = b
	}
	surfaces := make(map[BlobKey][]byte, wep.NumSurfaces())
	for _, k := range wep.SurfaceKeys() {
		b, _ := wep.Surface(k)
		surfaces[k] = b
	}
	rebuilt, err := NewEpochFull(wep.Seq(), wep.AsOf(), wep.Combos(), blobs, surfaces)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewReplica(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.InstallEpoch(rebuilt); err != nil {
		t.Fatal(err)
	}
	servers := []struct {
		name string
		srv  *Server
	}{
		{"writer", writer},
		{"traced_1pct_unsampled", traced},
		{"replica_installed_epoch", replica},
	}
	for _, tc := range servers {
		t.Run(tc.name, func(t *testing.T) {
			h := tc.srv.Handler()
			req := httptest.NewRequest(http.MethodGet,
				"/v1/advise?zone=us-east-1b&type=c4.large&probability=0.99&duration=1h", nil)
			rec := httptest.NewRecorder()
			allocs := testing.AllocsPerRun(200, func() {
				rec.Body.Reset()
				h.ServeHTTP(rec, req)
			})
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			if allocs != 0 {
				t.Errorf("advise fast path allocated %.1f times per request, want 0", allocs)
			}
		})
	}
}

// TestReplicaAdviseFromSurfaces pins the capability the surfaces ship to
// buy: a stateless replica — no histories, no predictors — answers
// /v1/advise from its installed epoch's surfaces, byte-identical to the
// writer.
func TestReplicaAdviseFromSurfaces(t *testing.T) {
	writer := testServer(t)
	wep := writer.CurrentEpoch()
	blobs := make(map[BlobKey][]byte, wep.NumTables())
	for _, k := range wep.Keys() {
		b, _ := wep.Blob(k)
		blobs[k] = b
	}
	surfaces := make(map[BlobKey][]byte, wep.NumSurfaces())
	for _, k := range wep.SurfaceKeys() {
		b, _ := wep.Surface(k)
		surfaces[k] = b
	}
	rebuilt, err := NewEpochFull(wep.Seq(), wep.AsOf(), wep.Combos(), blobs, surfaces)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewReplica(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.InstallEpoch(rebuilt); err != nil {
		t.Fatal(err)
	}
	targets := []string{
		"/v1/advise?zone=us-east-1b&type=c4.large&probability=0.99&duration=1h",
		"/v1/advise?zone=us-west-1a&type=c3.2xlarge&probability=0.95&duration=90m",
		"/v1/advise?zone=us-east-1c&type=c4.large&probability=0.99&duration=2000h", // refusal
	}
	for _, target := range targets {
		wCode, _, wBody := getBody(t, writer.Handler(), target)
		rCode, _, rBody := getBody(t, replica.Handler(), target)
		if wCode != rCode || !bytes.Equal(wBody, rBody) {
			t.Errorf("%s:\nwriter:  %d %s\nreplica: %d %s", target, wCode, wBody, rCode, rBody)
		}
	}
}
