// Package service implements the DrAFTS on-line prediction service and its
// Go client (§3.3). The original has run at predictspotprice.cs.ucsb.edu
// since late 2015 as part of the Aristotle project; this implementation
// reproduces its contract:
//
//   - it periodically (every 15 minutes by default) pulls price histories
//     and recomputes a set of maximum-bid predictions for every instance
//     type and availability zone;
//   - for each combo it publishes bid tables at the 0.95 and 0.99
//     probability levels, starting at the smallest bid that can guarantee
//     any duration and increasing in 5% increments up to 4x that minimum;
//   - clients fetch tables over a REST API as JSON (machine-readable, as
//     consumed by the Globus Galaxies provisioner in §4.3).
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/faults"
	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/obfuscate"
	"github.com/drafts-go/drafts/internal/resilience"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/telemetry"
	"github.com/drafts-go/drafts/internal/tenant"
	"github.com/drafts-go/drafts/internal/trace"
)

// Source supplies price histories; *history.Store satisfies it.
type Source interface {
	Combos() []spot.Combo
	Full(c spot.Combo) (*history.Series, bool)
}

// Config parameterizes the service.
type Config struct {
	Source Source
	// Probabilities to precompute tables for (default 0.95 and 0.99, the
	// levels the production service publishes).
	Probabilities []float64
	// RefreshEvery is the recomputation period (default 15 minutes).
	RefreshEvery time.Duration
	// MaxHistory caps the history fed to each predictor (default three
	// months).
	MaxHistory int
	// RefreshWorkers bounds the refresh fan-out (default: GOMAXPROCS).
	// Smaller values trade refresh latency for a quieter machine — useful
	// when draftsd shares a host.
	RefreshWorkers int
	// IncrementalMaxTicks caps how many new price ticks a combo may have
	// accumulated since the last refresh for the incremental path to apply:
	// instead of re-ingesting the whole history window (~26k ticks for three
	// months), the refresh clones the previously installed predictor and
	// feeds it only the new ticks. Incremental results are byte-identical to
	// a full recompute (enforced by TestIncrementalRefreshEquivalence); the
	// cap only bounds the clone cost spent before falling back to the flat
	// full scan. Zero selects DefaultIncrementalMaxTicks; negative disables
	// the incremental path entirely.
	IncrementalMaxTicks int
	// Durable, when non-nil, receives the encoded serving state after every
	// successful refresh (for crash recovery) and a retention-compaction
	// request aligned with the history window. Persistence failures are
	// logged, never fatal: serving fresh tables beats durability.
	Durable Durable
	// PreRefresh, when non-nil, runs at the top of every refresh cycle —
	// the daemon's hook for extending price histories with newly announced
	// ticks before tables recompute. Its error is logged and the refresh
	// proceeds on the histories as they stand.
	PreRefresh func() error
	// AccountMappings translates per-account obfuscated zone names to the
	// service's canonical ones. The provider remaps zone names per account
	// (§2.2), so a client's "us-east-1b" may be the service's
	// "us-east-1d"; the production prototype preconfigured this mapping
	// for each client (§3.3). Requests carrying ?account=<id> with a
	// configured mapping are translated; unknown accounts get an error
	// rather than silently wrong predictions. With Tenants configured the
	// account is derived from the authenticated tenant instead, and
	// ?account= survives only as a deprecated alias that must match it.
	AccountMappings map[string]obfuscate.Mapping
	// Tenants, when non-nil, requires every /v1/* request to authenticate
	// with a registered API key (Authorization: Bearer <key> or X-Api-Key)
	// and enforces each tenant's token-bucket quota and weighted
	// concurrency share before shared admission control. Nil preserves the
	// historical anonymous service exactly. The server installs a wall
	// clock into the registry and, when Metrics is configured, registers
	// the bounded-cardinality per-tenant counters.
	Tenants *tenant.Registry
	// Logger receives the service's structured logs (refresh outcomes,
	// per-combo failures). Nil discards them.
	Logger *slog.Logger
	// Metrics, when non-nil, registers the service's metric families
	// (request counts/latency, refresh instrumentation, table gauges) in
	// the given registry. Nil disables collection at the cost of one
	// branch per instrumentation site.
	Metrics *telemetry.Registry
	// MaxConcurrent caps the weighted concurrency admitted to /v1/*
	// (cached reads weigh 1, /v1/advise weighs 4). 0 disables admission
	// control entirely — every request runs unbounded, as before.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for admission once
	// MaxConcurrent is saturated; overflow is shed immediately with
	// 503 + Retry-After. Meaningful only with MaxConcurrent > 0.
	MaxQueue int
	// QueueWait bounds how long an admitted-queue request may wait before
	// it is shed (default 1s with admission control on).
	QueueWait time.Duration
	// AdviseBudget bounds the server-side compute spent on one /v1/advise
	// bid-escalation scan; past it the request is abandoned with
	// 503/overloaded. 0 disables the budget.
	AdviseBudget time.Duration
	// MaxStaleness converts degraded (serve-stale) reads into
	// 503/stale refusals once the tables age past it. 0 serves stale
	// tables indefinitely.
	MaxStaleness time.Duration
	// RetryAfter is the Retry-After hint stamped on shed and stale 503s
	// (default 1s, whole seconds).
	RetryAfter time.Duration
	// BreakerThreshold is how many consecutive refresh failures trip the
	// refresh circuit breaker (default 3).
	BreakerThreshold int
	// BreakerBackoff is the breaker's base probe delay once open (default
	// RefreshEvery/4); successive failed probes double it up to
	// BreakerMaxBackoff (default RefreshEvery), both with ±50% jitter.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// Faults optionally injects failures at the "service.refresh"
	// operation point. nil (the production default) disables injection.
	Faults *faults.Set
	// Tracer, when non-nil, traces every request and refresh cycle into
	// the always-on flight recorder served at GET /debug/flight, and
	// unifies X-Request-Id with the trace ID. The unsampled cached-GET
	// path stays allocation-free (see wrap); sampling, errors-always
	// retention, and the slow-trace threshold are the Tracer's own
	// configuration.
	Tracer *trace.Tracer
	// OnEpoch, when non-nil, is called after every blob-store install with
	// the newly published epoch — on a writer after each refresh, on a
	// replica after each InstallEpoch. It is the replication publish hook:
	// the daemon points it at cluster.Shipper.Publish so freshly computed
	// epochs ship to replicas. The hook runs synchronously on the
	// installing goroutine and must not block.
	OnEpoch func(*Epoch)
}

// DefaultIncrementalMaxTicks is the default cap on the incremental refresh
// path: one day of 5-minute ticks. A refresh loop running anywhere near its
// default 15-minute period accumulates ~3 ticks per cycle, so in steady
// state every refresh is incremental; the cap only matters after long
// outages, where a full recompute is no slower than replaying the gap.
const DefaultIncrementalMaxTicks = 24 * 12

// Server computes and serves bid tables, and retains each combo's online
// predictor so /v1/advise can answer duration queries beyond the published
// table span (escalating exactly as the library's Advise does).
type Server struct {
	cfg            Config
	logger         *slog.Logger
	metrics        *serviceMetrics
	incrementalMax int

	// role is "writer" or "replica"; epochSeq is the writer-local epoch
	// counter (replicas mirror the writer's value on install). Both exist
	// for replication and /v1/cluster/status — the serving path ignores
	// them.
	role     string
	epochSeq atomic.Uint64

	// sem admits /v1/* requests when MaxConcurrent is configured; nil
	// means no admission control. breaker gates the refresh loop's retry
	// cadence after consecutive failures; it always exists (a breaker
	// that never trips is free).
	sem     *resilience.Semaphore
	breaker *resilience.Breaker

	// tenants mirrors cfg.Tenants; nil serves anonymously, exactly as the
	// service always did.
	tenants *tenant.Registry

	// blobs is the pre-encoded serving state for the read fast path,
	// replaced wholesale by each refresh (or snapshot restore). Handlers
	// Load it once per request and treat the contents as immutable, so
	// cached GETs never touch s.mu. Nil until the first install, and reset
	// to nil if encoding ever fails — readers then fall back to
	// marshalling from s.tables under the lock.
	blobs atomic.Pointer[encodedTables]

	mu      sync.RWMutex
	tables  map[tableKey]core.BidTable
	preds   map[tableKey]*core.Predictor
	asOf    time.Time
	lastErr string // most recent refresh error; "" after a clean refresh
}

type tableKey struct {
	combo spot.Combo
	prob  float64
}

// New validates the configuration and returns a writer server with no
// tables yet; call Refresh (or Start) to populate it. For a read-only
// replication target, use NewReplica.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("service: nil source")
	}
	return newServer(cfg, roleWriter)
}

// newServer is the shared construction path behind New and NewReplica.
func newServer(cfg Config, role string) (*Server, error) {
	if len(cfg.Probabilities) == 0 {
		cfg.Probabilities = []float64{0.95, 0.99}
	}
	for _, p := range cfg.Probabilities {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("service: probability %v outside (0,1)", p)
		}
	}
	if cfg.RefreshEvery == 0 {
		cfg.RefreshEvery = 15 * time.Minute
	}
	if cfg.RefreshEvery < 0 {
		return nil, fmt.Errorf("service: negative refresh period")
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = core.DefaultMaxHistory
	}
	if cfg.RefreshWorkers < 0 {
		return nil, fmt.Errorf("service: negative refresh workers")
	}
	incrementalMax := cfg.IncrementalMaxTicks
	switch {
	case incrementalMax == 0:
		incrementalMax = DefaultIncrementalMaxTicks
	case incrementalMax < 0:
		incrementalMax = 0 // disabled
	}
	if cfg.MaxConcurrent < 0 {
		return nil, fmt.Errorf("service: negative max concurrent")
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("service: negative max queue")
	}
	if cfg.MaxConcurrent > 0 && cfg.QueueWait == 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerBackoff <= 0 {
		cfg.BreakerBackoff = cfg.RefreshEvery / 4
	}
	if cfg.BreakerMaxBackoff <= 0 {
		cfg.BreakerMaxBackoff = cfg.RefreshEvery
	}
	logger := cfg.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	s := &Server{
		cfg:            cfg,
		logger:         logger,
		metrics:        newServiceMetrics(cfg.Metrics),
		incrementalMax: incrementalMax,
		role:           role,
		breaker: resilience.NewBreaker(cfg.BreakerThreshold,
			cfg.BreakerBackoff, cfg.BreakerMaxBackoff, time.Now().UnixNano()),
		tables: make(map[tableKey]core.BidTable),
		preds:  make(map[tableKey]*core.Predictor),
	}
	if cfg.MaxConcurrent > 0 {
		s.sem = resilience.NewSemaphore(int64(cfg.MaxConcurrent), cfg.MaxQueue)
	}
	if cfg.Tenants != nil {
		s.tenants = cfg.Tenants
		s.tenants.EnsureClock(time.Now)
		if cfg.MaxConcurrent > 0 {
			s.tenants.SetConcurrencyShare(int64(cfg.MaxConcurrent))
		}
		if cfg.Metrics != nil {
			s.tenants.RegisterMetrics(cfg.Metrics, 0)
		}
	}
	return s, nil
}

// Refresh recomputes every combo's bid tables from the current histories,
// fanned out across RefreshWorkers goroutines (GOMAXPROCS by default).
// Combos whose history advanced by at most IncrementalMaxTicks since the
// previous refresh take the incremental path: the installed predictor is
// cloned and fed only the new ticks, producing byte-identical tables at a
// fraction of the full-window cost. The fresh tables are then pre-encoded
// into the blob store and both are installed atomically.
//
// Refreshes are best-effort per combo: a predictor failure is counted,
// logged, and surfaced through /healthz and the refresh metrics, but the
// tables that did compute are still installed and keep serving. Refresh
// returns an error only when failures left it with nothing at all — the
// one case where the previous table set should stay in place.
func (s *Server) Refresh() error {
	if s.role == roleReplica {
		return fmt.Errorf("service: replica cannot refresh; epochs arrive via InstallEpoch")
	}
	began := time.Now()
	// One trace per refresh cycle, forced into the flight recorder
	// regardless of sampling: refreshes are rare (minutes apart) and the
	// cycle's phase timings — tick ingest through snapshot write — are
	// exactly what a degraded node's operator wants from /debug/flight.
	tr := s.cfg.Tracer.StartTrace("refresh")
	defer tr.End()
	tr.Force()
	if err := s.cfg.Faults.Check("service.refresh"); err != nil {
		err = fmt.Errorf("service: refresh failed: %w", err)
		tr.Fail(err)
		s.metrics.refreshErrors.Inc()
		s.mu.Lock()
		s.lastErr = err.Error()
		s.mu.Unlock()
		return err
	}
	if s.cfg.PreRefresh != nil {
		sp := tr.StartSpan("ticks.ingest")
		err := s.cfg.PreRefresh()
		sp.EndErr(err)
		if err != nil {
			s.logger.Warn("refresh: pre-refresh hook failed; using histories as they stand", "err", err)
		}
	}
	combos := s.cfg.Source.Combos()
	fresh := make(map[tableKey]core.BidTable, len(combos)*len(s.cfg.Probabilities))
	freshPreds := make(map[tableKey]*core.Predictor, len(combos)*len(s.cfg.Probabilities))

	// Snapshot the currently installed predictors for the incremental path.
	// The map is replaced wholesale on install, never mutated in place, so
	// reading it without holding the lock during the fan-out is safe.
	s.mu.RLock()
	prevPreds := s.preds
	s.mu.RUnlock()

	// The effective parameters a fresh predictor would get, per probability
	// level: an installed predictor is reusable only if its parameters match
	// exactly. A Params validation error here would also fail NewPredictor
	// below, so it is left for the worker loop to report.
	wantParams := make([]core.Params, len(s.cfg.Probabilities))
	for i, prob := range s.cfg.Probabilities {
		if p, err := (core.Params{Probability: prob, MaxHistory: s.cfg.MaxHistory}).WithDefaults(); err == nil {
			wantParams[i] = p
		}
	}

	var (
		mu          sync.Mutex
		wg          sync.WaitGroup
		firstErr    error
		lastErr     error
		errCount    int
		skipped     int
		incremental int
	)
	workers := s.cfg.RefreshWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One span covers the whole fan-out: the per-combo qbets updates and
	// table builds run inside it (per-combo spans would blow the fixed
	// span budget at fleet scale).
	buildSpan := tr.StartSpan("tables.build")
	work := make(chan spot.Combo)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				series, ok := s.cfg.Source.Full(c)
				if !ok || series.Len() == 0 {
					mu.Lock()
					skipped++
					mu.Unlock()
					continue
				}
				for i, prob := range s.cfg.Probabilities {
					key := tableKey{combo: c, prob: prob}
					pred := s.extendPredictor(prevPreds[key], wantParams[i], series)
					if pred != nil {
						mu.Lock()
						incremental++
						mu.Unlock()
					} else {
						var err error
						pred, err = core.NewPredictor(core.Params{
							Probability: prob,
							MaxHistory:  s.cfg.MaxHistory,
						}, series.Start)
						if err != nil {
							s.metrics.comboErrors.Inc()
							s.logger.Warn("refresh: predictor failed",
								"zone", string(c.Zone), "type", string(c.Type),
								"probability", prob, "err", err)
							mu.Lock()
							errCount++
							if firstErr == nil {
								firstErr = err
							}
							lastErr = err
							mu.Unlock()
							continue
						}
						pred.ObserveSeries(series)
					}
					if table, ok := pred.Table(); ok {
						mu.Lock()
						fresh[key] = table
						freshPreds[key] = pred
						mu.Unlock()
					} else {
						mu.Lock()
						skipped++
						mu.Unlock()
					}
				}
			}
		}()
	}
	for _, c := range combos {
		work <- c
	}
	close(work)
	wg.Wait()
	buildSpan.End()

	elapsed := time.Since(began)
	s.metrics.refreshDuration.Observe(elapsed.Seconds())
	s.metrics.combosComputed.Add(uint64(len(fresh)))
	s.metrics.combosSkipped.Add(uint64(skipped))
	s.metrics.refreshIncremental.Add(uint64(incremental))

	if len(fresh) == 0 && errCount > 0 {
		err := fmt.Errorf("service: refresh produced no tables (%d failures, first: %w)", errCount, firstErr)
		tr.Fail(err)
		s.metrics.refreshErrors.Inc()
		s.mu.Lock()
		s.lastErr = err.Error()
		s.mu.Unlock()
		return err
	}

	// Surfaces are built before asOf is stamped: their construction cost
	// (a GuaranteeFor per escalation entry per table) must not age the
	// epoch it describes.
	surfSpan := tr.StartSpan("surfaces.build")
	surfaces := buildSurfaces(fresh, freshPreds)
	surfSpan.End()

	now := time.Now().UTC()
	errStr := ""
	if errCount > 0 {
		errStr = fmt.Sprintf("%d combo failures, last: %v", errCount, lastErr)
	}
	s.mu.Lock()
	s.tables = fresh
	s.preds = freshPreds
	s.asOf = now
	s.lastErr = errStr
	s.mu.Unlock()
	s.installBlobsTraced(fresh, freshPreds, surfaces, now, tr)
	s.metrics.tables.Set(float64(len(fresh)))
	s.metrics.lastSuccess.SetTime(now)
	if s.cfg.Tracer != nil {
		s.logger.Info("refresh complete",
			"tables", len(fresh), "skipped", skipped, "combo_errors", errCount,
			"incremental", incremental, "elapsed", elapsed.Round(time.Millisecond),
			"trace_id", tr.IDString())
	} else {
		s.logger.Info("refresh complete",
			"tables", len(fresh), "skipped", skipped, "combo_errors", errCount,
			"incremental", incremental, "elapsed", elapsed.Round(time.Millisecond))
	}
	s.persist(now, tr)
	return nil
}

// extendPredictor attempts the incremental refresh path for one combo: if
// the previously installed predictor has matching parameters and the series
// has advanced by no more than incrementalMax ticks on the same grid, it
// returns a clone of that predictor extended with exactly the new ticks.
// Installed predictors are shared with in-flight /v1/advise requests and
// must never be mutated, which is why the clone is mandatory. A nil return
// means the caller must rebuild from the full window.
//
// The clone's lifetime observation sequence then equals what a fresh
// predictor sees over the full series, making the resulting tables
// byte-identical to a full recompute — TestIncrementalRefreshEquivalence
// enforces this across randomized tick sequences.
func (s *Server) extendPredictor(old *core.Predictor, want core.Params, series *history.Series) *core.Predictor {
	if old == nil || s.incrementalMax <= 0 || old.Len() == 0 || old.Params() != want {
		return nil
	}
	// Map the predictor's watermark onto the series grid; the tick at
	// next-1 must be exactly the predictor's latest observation time or the
	// grids have diverged (source swapped, series rebuilt from scratch).
	next := series.IndexOf(old.Now()) + 1
	if next < 1 || next > series.Len() || series.Len()-next > s.incrementalMax {
		return nil
	}
	if !series.TimeAt(next - 1).Equal(old.Now()) {
		return nil
	}
	pred := old.Clone()
	for _, v := range series.Prices[next:] {
		pred.Observe(v)
	}
	return pred
}

// persist checkpoints the freshly installed serving state and trims WAL
// segments that have aged out of the retention window. Both are
// best-effort: a persistence failure costs recovery freshness, not
// serving — so failures mark the refresh trace's spans but never fail the
// trace itself. The store's WAL sync rides inside the snapshot.write span
// (WriteSnapshot syncs the log before publishing).
func (s *Server) persist(now time.Time, tr *trace.Trace) {
	if s.cfg.Durable == nil {
		return
	}
	sp := tr.StartSpan("snapshot.encode")
	payload, err := s.EncodeSnapshot()
	sp.EndErr(err)
	if err != nil {
		s.logger.Error("refresh: encoding snapshot failed", "err", err)
		return
	}
	wsp := tr.StartSpan("snapshot.write")
	err = s.cfg.Durable.WriteSnapshot(payload)
	wsp.EndErr(err)
	if err != nil {
		s.logger.Error("refresh: writing snapshot failed", "err", err)
		return
	}
	csp := tr.StartSpan("wal.compact")
	removed, err := s.cfg.Durable.CompactBefore(now.Add(-history.Retention))
	csp.EndErr(err)
	if err != nil {
		s.logger.Warn("refresh: WAL compaction failed", "err", err)
		return
	}
	if removed > 0 {
		s.logger.Info("compacted WAL", "segments_removed", removed)
	}
}

// Start runs the 15-minute refresh loop until the context is cancelled.
// On a cold start the first refresh happens synchronously and its error is
// returned; after RestoreSnapshot has installed tables (a warm restart),
// the restored state serves immediately and the first refresh runs in the
// background instead of blocking startup.
//
// Periodic refreshes are best-effort: the previous tables keep serving if
// a recomputation fails. Consecutive failures (BreakerThreshold of them)
// trip a circuit breaker, after which the loop stops hammering the failing
// source on the normal cadence and instead probes it on a jittered
// exponential backoff (BreakerBackoff doubling up to BreakerMaxBackoff).
// While the breaker is open the service is in degraded, serve-stale mode:
// reads carry X-Drafts-Staleness once the tables age past two refresh
// periods and /healthz reports "degraded". The first successful probe
// closes the breaker and restores the normal cadence.
func (s *Server) Start(ctx context.Context) error {
	if s.role == roleReplica {
		return fmt.Errorf("service: replica has no refresh loop; run a cluster.Receiver instead")
	}
	s.mu.RLock()
	warm := !s.asOf.IsZero()
	s.mu.RUnlock()
	if warm {
		go func() {
			if err := s.Refresh(); err != nil {
				s.logger.Error("post-recovery refresh failed; serving restored tables", "err", err)
			}
		}()
	} else if err := s.Refresh(); err != nil {
		return err
	}
	go s.refreshLoop(ctx)
	return nil
}

// refreshLoop drives periodic refreshes through the circuit breaker.
func (s *Server) refreshLoop(ctx context.Context) {
	timer := time.NewTimer(s.cfg.RefreshEvery)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		probing := s.breaker.Probe()
		err := s.Refresh()
		switch {
		case err == nil:
			if s.breaker.State() != resilience.Closed || probing {
				s.logger.Info("refresh recovered; circuit breaker closed")
			}
			s.breaker.Success()
			s.metrics.breakerState.Set(0)
			timer.Reset(s.cfg.RefreshEvery)
		default:
			tripped := s.breaker.Failure()
			if state := s.breaker.State(); state == resilience.Open {
				wait := s.breaker.Backoff()
				if tripped && !probing {
					s.logger.Error("refresh circuit breaker tripped; serving stale tables",
						"err", err, "next_probe_in", wait.Round(time.Millisecond))
				} else {
					s.logger.Warn("refresh probe failed; breaker stays open",
						"err", err, "next_probe_in", wait.Round(time.Millisecond))
				}
				s.metrics.breakerState.Set(1)
				timer.Reset(wait)
			} else {
				s.logger.Error("periodic refresh failed; serving previous tables",
					"err", err, "consecutive", s.breaker.ConsecutiveFailures())
				timer.Reset(s.cfg.RefreshEvery)
			}
		}
	}
}

// table returns the stored table for a combo/probability.
func (s *Server) table(c spot.Combo, prob float64) (core.BidTable, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableKey{combo: c, prob: prob}]
	return t, ok
}

// Wire formats.

// PointJSON is one bid/duration pair on the wire.
type PointJSON struct {
	Bid             float64 `json:"bid_usd_per_hour"`
	DurationSeconds float64 `json:"guaranteed_duration_seconds"`
}

// TableJSON is a bid table on the wire.
type TableJSON struct {
	Zone         string      `json:"zone"`
	InstanceType string      `json:"instance_type"`
	Probability  float64     `json:"probability"`
	At           time.Time   `json:"as_of"`
	Points       []PointJSON `json:"points"`
}

func toJSON(c spot.Combo, t core.BidTable) TableJSON {
	out := TableJSON{
		Zone:         string(c.Zone),
		InstanceType: string(c.Type),
		Probability:  t.Probability,
		At:           t.At,
	}
	for _, p := range t.Points {
		out.Points = append(out.Points, PointJSON{
			Bid:             p.Bid,
			DurationSeconds: p.Duration.Seconds(),
		})
	}
	return out
}

// FromJSON converts a wire table back to the core representation.
func FromJSON(tj TableJSON) (spot.Combo, core.BidTable) {
	t := core.BidTable{At: tj.At, Probability: tj.Probability}
	for _, p := range tj.Points {
		t.Points = append(t.Points, core.BidPoint{
			Bid:      p.Bid,
			Duration: time.Duration(p.DurationSeconds * float64(time.Second)),
		})
	}
	return spot.Combo{Zone: spot.Zone(tj.Zone), Type: spot.InstanceType(tj.InstanceType)}, t
}

// Handler returns the REST API.
//
//	GET /healthz                  -> {"status":"ok","tables":N,...}
//	GET /v1/combos                -> [{"zone":..., "instance_type":...}, ...]
//	GET /v1/predictions?zone=Z&type=T&probability=P -> TableJSON
//	GET /v1/tables?combos=Z/T,Z/T&probability=P     -> [TableJSON, ...]
//	GET /v1/advise?zone=Z&type=T&probability=P&duration=2h -> QuoteJSON
//	POST /v1/fleet {"duration":"12h","count":5,...}        -> FleetResponse
//
// /v1/combos, /v1/predictions, and /v1/tables serve pre-encoded responses
// with a strong ETag derived from the refresh epoch; requests carrying a
// matching If-None-Match receive 304 Not Modified. Cached /v1/predictions
// and /v1/advise GETs perform zero heap allocations (/v1/advise answers
// from the epoch's precomputed surfaces; see adviseFast).
//
// Errors are reported as the uniform JSON envelope documented in
// errors.go; every /v1 error body decodes into the same
// {"error":{"code","message","request_id"}} shape.
//
// With a metrics registry configured, every request is recorded in
// drafts_http_requests_total and drafts_http_request_seconds; with
// MaxConcurrent configured, /v1/* requests pass weighted admission control
// and overflow is shed with 503/overloaded + Retry-After. With a Tenants
// registry configured, every /v1 request must present an API key
// (401/unauthenticated otherwise) and passes the tenant's token bucket
// and inflight cap (429/rate_limited) before the shared semaphore;
// authenticated cached GETs remain zero-allocation, including per-account
// zone views (precomputed at refresh; see blob.go). With a Tracer
// configured, every request is traced, GET /debug/flight serves the
// flight recorder (admission-exempt, like /healthz), and X-Request-Id is
// the trace ID. All of it runs in the same middleware (wrap); with none
// configured the bare mux is returned. Cached /v1/predictions GETs
// perform zero heap allocations on the bare mux and on the tracing-only
// configuration (unsampled requests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /v1/combos", s.handleCombos)
	mux.HandleFunc("GET /v1/predictions", s.handlePredictions)
	mux.HandleFunc("GET /v1/tables", s.handleTables)
	mux.HandleFunc("GET /v1/advise", s.handleAdvise)
	mux.HandleFunc("POST /v1/fleet", s.handleFleet)
	return s.wrap(mux)
}

// handleFlight serves the flight recorder: the most recent completed
// traces plus every retained error/shed/slow trace, newest first, with
// the tracer's counters. The payload is bounded by the ring capacities,
// and the route is deliberately outside /v1/ so admission control never
// sheds it — it must answer precisely when the service is degraded.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Tracer == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "tracing is not enabled")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Tracer.Report())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// staleAfter is how old the table set may grow before /healthz reports it
// stale: two refresh periods means at least one whole cycle failed or hung.
func (s *Server) staleAfter() time.Duration {
	return 2 * s.cfg.RefreshEvery
}

// handleHealth reports the serving state. Status is one of:
//
//	"empty"     no tables computed yet (cold start in progress)
//	"ok"        fresh tables, refresh loop healthy
//	"degraded"  serving, but impaired: the tables have aged past two
//	            refresh periods, or the refresh circuit breaker is open
//	            (or both — the usual refresh-outage combination)
//
// A single "degraded" state rather than flapping per-request judgments is
// what orchestrators should alert on; the stale bool and breaker field
// break down which impairment applies.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.tables)
	asOf := s.asOf
	lastErr := s.lastErr
	s.mu.RUnlock()
	breaker := s.breakerState()
	// Replicas never populate s.tables (they have no predictors); the
	// installed epoch is the authoritative table count there.
	var epoch uint64
	if et := s.blobs.Load(); et != nil {
		epoch = et.seq
		if n == 0 {
			n = len(et.tables)
		}
	}
	resp := map[string]any{"status": "ok", "tables": n, "as_of": asOf,
		"role": s.role, "epoch": epoch}
	stale := true
	if asOf.IsZero() {
		resp["status"] = "empty"
	} else {
		age := time.Since(asOf)
		resp["as_of_age_seconds"] = age.Seconds()
		stale = age > s.staleAfter()
		if stale || breaker != resilience.Closed {
			resp["status"] = "degraded"
		}
	}
	resp["stale"] = stale
	resp["breaker"] = breaker.String()
	if lastErr != "" {
		resp["last_refresh_error"] = lastErr
	}
	writeJSON(w, http.StatusOK, resp)
}

type comboJSON struct {
	Zone         string `json:"zone"`
	InstanceType string `json:"instance_type"`
}

// QuoteJSON is a bid recommendation on the wire.
type QuoteJSON struct {
	Zone            string  `json:"zone"`
	InstanceType    string  `json:"instance_type"`
	Probability     float64 `json:"probability"`
	Bid             float64 `json:"bid_usd_per_hour"`
	DurationSeconds float64 `json:"guaranteed_duration_seconds"`
}

// resolveCombo parses and (when an account applies) deobfuscates the
// zone/type query parameters; it writes the error response itself.
//
// The account is derived from the authenticated tenant when the server has
// a tenant registry; the legacy ?account= parameter survives only as a
// deprecated alias that must match the tenant's account (the response then
// carries Deprecation and Sunset headers). Without a registry ?account=
// keeps its historical meaning unchanged.
func (s *Server) resolveCombo(w http.ResponseWriter, r *http.Request) (visible spot.Zone, combo spot.Combo, prob float64, ok bool) {
	zone := r.URL.Query().Get("zone")
	ty := r.URL.Query().Get("type")
	probStr := r.URL.Query().Get("probability")
	if zone == "" || ty == "" {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "zone and type are required")
		return
	}
	prob = 0.99
	if probStr != "" {
		var err error
		prob, err = strconv.ParseFloat(probStr, 64)
		if err != nil || !(prob > 0 && prob < 1) {
			writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid probability %q", probStr)
			return
		}
	}
	visible = spot.Zone(zone)
	canonical := visible
	tn := tenantOf(w)
	account := r.URL.Query().Get("account")
	if account != "" && s.tenants != nil {
		// Deprecated alias: tolerated only when it names the authenticated
		// tenant's own account — anything else is a cross-tenant probe.
		if tn == nil || tn.Account != account {
			writeErr(w, http.StatusForbidden, codePermissionDenied,
				"account %q does not match the authenticated tenant", account)
			return
		}
		markAccountParamDeprecated(w)
	}
	if account == "" && tn != nil {
		account = tn.Account
	}
	if account != "" {
		m, found := s.cfg.AccountMappings[account]
		if !found {
			if tn != nil && account == tn.Account {
				// A tenant whose account has no mapping configured sees the
				// canonical view rather than being locked out.
				return visible, spot.Combo{Zone: canonical, Type: spot.InstanceType(ty)}, prob, true
			}
			writeErr(w, http.StatusForbidden, codePermissionDenied, "no zone mapping configured for account %q", account)
			return
		}
		var err error
		canonical, err = m.Physical(visible)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeInvalidArgument, "account %q: %v", account, err)
			return
		}
	}
	return visible, spot.Combo{Zone: canonical, Type: spot.InstanceType(ty)}, prob, true
}

// handleAdvise answers the user question directly: the smallest bid that
// guarantees the requested duration, escalating past the published table
// span when necessary. Requests are answered from the epoch's precomputed
// advise surfaces when possible (adviseFast — an array lookup, no deadline
// needed); everything the fast path cannot serve falls back to the
// original bid-escalation scan below.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if s.adviseFast(w, r) {
		return
	}
	s.handleAdviseScan(w, r)
}

// handleAdviseScan is the original advise path: it runs the predictor's
// bid-escalation scan under the server-side AdviseBudget (and the client's
// own disconnection) — past either deadline the request is abandoned with
// 503/overloaded rather than burning CPU on an answer nobody is waiting
// for. It remains the fallback for requests the surface path cannot serve
// (account mapping, escaped queries, surface-less epochs) and the
// regression baseline MarshalHandler exposes to draftsbench and the
// equivalence tests.
func (s *Server) handleAdviseScan(w http.ResponseWriter, r *http.Request) {
	visible, combo, prob, ok := s.resolveCombo(w, r)
	if !ok {
		return
	}
	durStr := r.URL.Query().Get("duration")
	if durStr == "" {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "duration is required (e.g. 2h30m)")
		return
	}
	dur, err := time.ParseDuration(durStr)
	if err != nil || dur <= 0 {
		writeErr(w, http.StatusBadRequest, codeInvalidArgument, "invalid duration %q", durStr)
		return
	}
	// Predictors are never mutated after a refresh installs them (Advise
	// and its callees are read-only), so sharing one across concurrent
	// requests is safe.
	s.mu.RLock()
	pred := s.preds[tableKey{combo: combo, prob: prob}]
	asOf := s.asOf
	s.mu.RUnlock()
	if pred == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "no predictor for %s at probability %v", combo, prob)
		return
	}
	if !s.checkStaleness(w, asOf) {
		return
	}
	ctx := r.Context()
	if s.cfg.AdviseBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.AdviseBudget)
		defer cancel()
	}
	quote, err := pred.AdviseContext(ctx, dur)
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.adviseDeadline.Inc()
			s.setRetryAfter(w)
			writeErr(w, http.StatusServiceUnavailable, codeOverloaded,
				"advise abandoned: %v", err)
			return
		}
		writeErr(w, http.StatusConflict, codeNotFound, "cannot guarantee %v on %s: %v", dur, combo, err)
		return
	}
	writeJSON(w, http.StatusOK, QuoteJSON{
		Zone:            string(visible),
		InstanceType:    string(combo.Type),
		Probability:     prob,
		Bid:             quote.Bid,
		DurationSeconds: quote.Duration.Seconds(),
	})
}
