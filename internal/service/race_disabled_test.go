//go:build !race

package service

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation adds heap allocations that would fail the
// zero-allocation assertions.
const raceEnabled = false
