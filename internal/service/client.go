package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/hashring"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/trace"
)

// Client is a typed client for the DrAFTS prediction service — what the
// modified Globus Galaxies provisioner used to fetch "the DrAFTS graph for
// each instance type from the DrAFTS service" (§4.3).
type Client struct {
	// BaseURL of the service, e.g. "http://localhost:8732".
	BaseURL string
	// APIKey, when set, authenticates every request as a registered tenant
	// (Authorization: Bearer <key>). Required against servers running with
	// a tenant registry; ignored by anonymous servers.
	APIKey string
	// Account, when set, is sent with prediction requests so the service
	// translates this account's obfuscated zone names (§2.2, §3.3).
	// Deprecated against authenticated servers: the tenant's account is
	// derived from APIKey, and an explicit mismatch is refused with
	// permission_denied. Prefer APIKey alone.
	Account string
	// Timeout bounds each request attempt (default 30 seconds). Ignored
	// when HTTPClient is set.
	Timeout time.Duration
	// Retries is how many extra attempts follow a retryable failure — a
	// transport error, an "overloaded", "stale", or "rate_limited" API
	// error, or a 502/503/504 — before giving up. Each retry backs off exponentially
	// from RetryBackoff with ±50% jitter, never sleeping less than the
	// server's Retry-After hint. Application errors (4xx, 5xx other than
	// the above) never retry.
	Retries int
	// RetryBackoff is the base delay before the first retry (default
	// 250ms).
	RetryBackoff time.Duration
	// HTTPClient defaults to a client with Timeout.
	HTTPClient *http.Client
	// Tracer, when non-nil, traces each logical request (all retry
	// attempts share one trace) and injects the W3C traceparent header so
	// draftsctl/draftsbench-originated traces cross the wire: the server
	// adopts the client's trace ID, and its X-Request-Id — in logs, error
	// envelopes, and /debug/flight — matches the ID the client holds.
	Tracer *trace.Tracer
	// Replicas, when non-empty, enables client-side read routing: the
	// client hashes each keyed read (a combo, for /v1/predictions and
	// /v1/tables) onto a consistent-hash ring over these base URLs — the
	// same FNV ring the cluster router uses, so client-routed and
	// router-fronted fleets place keys identically. Retries walk the
	// ring clockwise (the node that would own the key next), then fall
	// back to BaseURL; unkeyed reads (/v1/combos, /debug/flight) and
	// /v1/advise (only the writer holds predictors) go to BaseURL as
	// always. The per-code retry rules are unchanged — routing only
	// changes WHERE each attempt goes.
	Replicas []string

	// sleep is the retry delay; tests stub it to run instantly.
	sleep func(time.Duration)

	ringOnce sync.Once
	ring     *hashring.Ring
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

// APIError is a non-200 response from the service, decoded from the v1
// error envelope when one is present. Callers unwrap it with errors.As and
// switch on Code (the closed vocabulary documented in errors.go) rather
// than parsing message text; RequestID ties the failure to the server-side
// log line that explains it.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code ("invalid_argument",
	// "unauthenticated", "permission_denied", "not_found", "rate_limited",
	// "overloaded", "stale", "internal"), empty when the response carried
	// no envelope (a proxy's bare 502, an old server).
	Code string
	// Message is the human-readable description.
	Message string
	// RequestID echoes the X-Request-ID the server assigned, when present.
	RequestID string
	// RetryAfter is the server's Retry-After hint, zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	var b strings.Builder
	b.WriteString("service client: ")
	b.WriteString(strconv.Itoa(e.Status))
	b.WriteByte(' ')
	b.WriteString(http.StatusText(e.Status))
	if e.Code != "" {
		b.WriteString(" (")
		b.WriteString(e.Code)
		b.WriteByte(')')
	}
	if e.Message != "" {
		b.WriteString(": ")
		b.WriteString(e.Message)
	}
	if e.RequestID != "" {
		b.WriteString(" [request ")
		b.WriteString(e.RequestID)
		b.WriteByte(']')
	}
	return b.String()
}

// retryable reports whether err is worth another attempt: transport-level
// failures (connection refused, timeout — the *url.Error wrapping), API
// errors that name a transient condition ("overloaded" admission shed,
// "stale" cold start, "rate_limited" quota refusal — all clear on their
// own; the Retry-After floor keeps a rate-limited retry from burning the
// remaining budget inside one refill window), and the bare gateway
// statuses a proxy in front of a restarting service returns.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case codeOverloaded, codeStale, codeRateLimited:
			return true
		case "":
			return ae.Status == http.StatusBadGateway ||
				ae.Status == http.StatusServiceUnavailable ||
				ae.Status == http.StatusGatewayTimeout
		}
		return false
	}
	_, transport := err.(*url.Error)
	return transport
}

// retryAfter extracts the server's Retry-After floor from err, zero when
// none applies.
func retryAfter(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

func (c *Client) get(path string, query url.Values, out any) error {
	return c.getKeyed("", path, query, out)
}

// GetJSON performs one GET against the service with the client's full
// retry/backoff/tracing machinery and decodes the JSON response into out.
// It exists for endpoints outside the typed surface — draftsctl's cluster
// status rendering being the canonical caller.
func (c *Client) GetJSON(path string, query url.Values, out any) error {
	return c.getKeyed("", path, query, out)
}

// bases returns the base URLs to try, in order, for a read placed by key.
// With no replica list (or no key) every attempt goes to BaseURL; with
// one, attempts walk the key's ring candidates — owner first, then the
// nodes that would inherit the key — and BaseURL is the last resort when
// it is not already on the ring.
func (c *Client) bases(key string) []string {
	if len(c.Replicas) == 0 || key == "" {
		return []string{c.BaseURL}
	}
	c.ringOnce.Do(func() {
		c.ring = hashring.New(0, c.Replicas...)
	})
	out := c.ring.Candidates(key, c.ring.Len())
	for _, b := range out {
		if b == c.BaseURL {
			return out
		}
	}
	return append(out, c.BaseURL)
}

// getKeyed is get with read placement: key (a combo, normally) selects
// which node each attempt targets via the client-side ring.
func (c *Client) getKeyed(key, path string, query url.Values, out any) error {
	return c.doKeyed(http.MethodGet, key, path, query, nil, out)
}

// doKeyed is the request engine behind every typed call: method + body
// generalize getKeyed so POST endpoints (/v1/fleet) share the identical
// retry/backoff/placement/tracing machinery. A non-nil body is replayed
// from a fresh reader on every attempt.
func (c *Client) doKeyed(method, key, path string, query url.Values, body []byte, out any) (err error) {
	bases := c.bases(key)
	targets := make([]string, len(bases))
	for i, base := range bases {
		u, uerr := url.Parse(base)
		if uerr != nil {
			return fmt.Errorf("service client: bad base URL %q: %w", base, uerr)
		}
		u.Path = path
		u.RawQuery = query.Encode()
		targets[i] = u.String()
	}

	tr := c.Tracer.StartTrace("client")
	defer tr.End()
	tr.SetRoute(path)
	defer func() { tr.Fail(err) }() // Fail(nil) no-ops; runs before End

	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var rng *rand.Rand
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.doOnce(method, targets[attempt%len(targets)], tr, body, out)
		if lastErr == nil || attempt >= c.Retries || !retryable(lastErr) {
			return lastErr
		}
		// Exponential backoff with ±50% jitter so a fleet of clients
		// retrying against a restarting service doesn't stampede it. The
		// server's Retry-After hint is a floor, never a ceiling: backing
		// off longer than asked is always safe.
		d := backoff << attempt
		if rng == nil {
			rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		wait := d/2 + time.Duration(rng.Int63n(int64(d)))
		if floor := retryAfter(lastErr); wait < floor {
			wait = floor
		}
		sleep(wait)
	}
}

func (c *Client) doOnce(method, target string, tr *trace.Trace, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, target, rd)
	if err != nil {
		return fmt.Errorf("service client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("Authorization", bearerPrefix+c.APIKey)
	}
	// Retries reuse the logical request's trace: every attempt carries the
	// same trace ID, so the server-side record of a retried request is one
	// joined story rather than unrelated fragments.
	if tp := tr.Traceparent(); tp != "" {
		req.Header.Set(traceparentHeader, tp)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError builds the *APIError for a non-200 response. It decodes
// the v1 envelope, falls back to the pre-envelope {"error": "..."} shape
// older servers emit, and degrades to status-only for non-JSON bodies (a
// proxy's HTML 502 page). The body read is bounded: an error response is
// small by construction.
func decodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{
		Status:    resp.StatusCode,
		RequestID: resp.Header.Get(requestIDHeader),
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err != nil {
		return ae
	}
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &env) != nil || len(env.Error) == 0 {
		return ae
	}
	var det errorDetail
	if json.Unmarshal(env.Error, &det) == nil && (det.Code != "" || det.Message != "") {
		ae.Code = det.Code
		ae.Message = det.Message
		if ae.RequestID == "" {
			ae.RequestID = det.RequestID
		}
		return ae
	}
	var legacy string
	if json.Unmarshal(env.Error, &legacy) == nil {
		ae.Message = legacy
	}
	return ae
}

// Combos lists every (zone, type) the service has tables for.
func (c *Client) Combos() ([]spot.Combo, error) {
	var raw []comboJSON
	if err := c.get("/v1/combos", nil, &raw); err != nil {
		return nil, err
	}
	out := make([]spot.Combo, len(raw))
	for i, r := range raw {
		out[i] = spot.Combo{Zone: spot.Zone(r.Zone), Type: spot.InstanceType(r.InstanceType)}
	}
	return out, nil
}

// Predictions fetches the bid table for a combo at a probability level.
func (c *Client) Predictions(combo spot.Combo, probability float64) (core.BidTable, error) {
	q := url.Values{}
	q.Set("zone", string(combo.Zone))
	q.Set("type", string(combo.Type))
	q.Set("probability", strconv.FormatFloat(probability, 'f', -1, 64))
	if c.Account != "" {
		q.Set("account", c.Account)
	}
	var tj TableJSON
	key := string(combo.Zone) + "/" + string(combo.Type)
	if err := c.getKeyed(key, "/v1/predictions", q, &tj); err != nil {
		return core.BidTable{}, err
	}
	_, table := FromJSON(tj)
	return table, nil
}

// Tables fetches several combos' bid tables in one round trip via the
// batch endpoint (GET /v1/tables), returned in request order. Combos are
// addressed by their canonical names as listed by Combos; the batch
// endpoint does not translate account-obfuscated zones, so Account is not
// sent.
func (c *Client) Tables(combos []spot.Combo, probability float64) ([]TableJSON, error) {
	if len(combos) == 0 {
		return nil, fmt.Errorf("service client: no combos requested")
	}
	parts := make([]string, len(combos))
	for i, combo := range combos {
		parts[i] = combo.String()
	}
	q := url.Values{}
	q.Set("combos", strings.Join(parts, ","))
	q.Set("probability", strconv.FormatFloat(probability, 'f', -1, 64))
	var out []TableJSON
	if err := c.getKeyed(parts[0], "/v1/tables", q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Advise asks the service directly for the smallest bid guaranteeing the
// duration; unlike BidFor it can escalate beyond the published table span.
func (c *Client) Advise(combo spot.Combo, probability float64, d time.Duration) (core.Quote, error) {
	q := url.Values{}
	q.Set("zone", string(combo.Zone))
	q.Set("type", string(combo.Type))
	q.Set("probability", strconv.FormatFloat(probability, 'f', -1, 64))
	q.Set("duration", d.String())
	if c.Account != "" {
		q.Set("account", c.Account)
	}
	var qj QuoteJSON
	if err := c.get("/v1/advise", q, &qj); err != nil {
		return core.Quote{}, err
	}
	return core.Quote{
		Bid:         qj.Bid,
		Duration:    time.Duration(qj.DurationSeconds * float64(time.Second)),
		Probability: qj.Probability,
	}, nil
}

// Fleet asks the catalog-wide advisor (POST /v1/fleet) for the cheapest
// compliant combos carrying the request's duration at its probability.
// Any surface-bearing node answers identically for the same epoch, so
// with Replicas configured the call is placed on the ring under the
// stable key "/v1/fleet" (retries walk the ring like every keyed read).
// Page through deep result sets by feeding each response's NextCursor
// back as the next request's Cursor.
func (c *Client) Fleet(req FleetRequest) (FleetResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return FleetResponse{}, fmt.Errorf("service client: encoding fleet request: %w", err)
	}
	var resp FleetResponse
	if err := c.doKeyed(http.MethodPost, "/v1/fleet", "/v1/fleet", nil, body, &resp); err != nil {
		return FleetResponse{}, err
	}
	return resp, nil
}

// Flight fetches the server's flight recorder: the most recent completed
// traces plus every retained error/shed/slow trace (GET /debug/flight).
func (c *Client) Flight() (trace.Report, error) {
	var rep trace.Report
	if err := c.get("/debug/flight", nil, &rep); err != nil {
		return trace.Report{}, err
	}
	return rep, nil
}

// BidFor is the common client workflow: fetch the table and pick the
// smallest bid guaranteeing duration d.
func (c *Client) BidFor(combo spot.Combo, probability float64, d time.Duration) (float64, error) {
	table, err := c.Predictions(combo, probability)
	if err != nil {
		return 0, err
	}
	bid, ok := table.BidFor(d)
	if !ok {
		return 0, fmt.Errorf("service client: no tabulated bid guarantees %v for %s", d, combo)
	}
	return bid, nil
}
