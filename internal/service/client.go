package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/spot"
)

// Client is a typed client for the DrAFTS prediction service — what the
// modified Globus Galaxies provisioner used to fetch "the DrAFTS graph for
// each instance type from the DrAFTS service" (§4.3).
type Client struct {
	// BaseURL of the service, e.g. "http://localhost:8732".
	BaseURL string
	// Account, when set, is sent with prediction requests so the service
	// translates this account's obfuscated zone names (§2.2, §3.3).
	Account string
	// Timeout bounds each request attempt (default 30 seconds). Ignored
	// when HTTPClient is set.
	Timeout time.Duration
	// Retries is how many extra attempts follow a retryable failure — a
	// transport error or a 502/503/504 — before giving up. Each retry backs
	// off exponentially from RetryBackoff with ±50% jitter. Application
	// errors (4xx, 5xx other than the gateway trio) never retry.
	Retries int
	// RetryBackoff is the base delay before the first retry (default
	// 250ms).
	RetryBackoff time.Duration
	// HTTPClient defaults to a client with Timeout.
	HTTPClient *http.Client

	// sleep is the retry delay; tests stub it to run instantly.
	sleep func(time.Duration)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

// statusError is a non-200 response; it keeps the status code so the retry
// loop can distinguish gateway failures from application errors.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// retryable reports whether err is worth another attempt: transport-level
// failures (connection refused, timeout — the *url.Error wrapping) and the
// gateway statuses a restarting or overloaded service returns.
func retryable(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code == http.StatusBadGateway ||
			se.code == http.StatusServiceUnavailable ||
			se.code == http.StatusGatewayTimeout
	}
	_, transport := err.(*url.Error)
	return transport
}

func (c *Client) get(path string, query url.Values, out any) error {
	u, err := url.Parse(c.BaseURL)
	if err != nil {
		return fmt.Errorf("service client: bad base URL: %w", err)
	}
	u.Path = path
	u.RawQuery = query.Encode()
	target := u.String()

	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var rng *rand.Rand
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.getOnce(target, out)
		if lastErr == nil || attempt >= c.Retries || !retryable(lastErr) {
			return lastErr
		}
		// Exponential backoff with ±50% jitter so a fleet of clients
		// retrying against a restarting service doesn't stampede it.
		d := backoff << attempt
		if rng == nil {
			rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		sleep(d/2 + time.Duration(rng.Int63n(int64(d))))
	}
}

func (c *Client) getOnce(target string, out any) error {
	resp, err := c.http().Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return &statusError{code: resp.StatusCode,
				msg: fmt.Sprintf("service client: %s: %s", resp.Status, e.Error)}
		}
		return &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("service client: %s", resp.Status)}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Combos lists every (zone, type) the service has tables for.
func (c *Client) Combos() ([]spot.Combo, error) {
	var raw []comboJSON
	if err := c.get("/v1/combos", nil, &raw); err != nil {
		return nil, err
	}
	out := make([]spot.Combo, len(raw))
	for i, r := range raw {
		out[i] = spot.Combo{Zone: spot.Zone(r.Zone), Type: spot.InstanceType(r.InstanceType)}
	}
	return out, nil
}

// Predictions fetches the bid table for a combo at a probability level.
func (c *Client) Predictions(combo spot.Combo, probability float64) (core.BidTable, error) {
	q := url.Values{}
	q.Set("zone", string(combo.Zone))
	q.Set("type", string(combo.Type))
	q.Set("probability", strconv.FormatFloat(probability, 'f', -1, 64))
	if c.Account != "" {
		q.Set("account", c.Account)
	}
	var tj TableJSON
	if err := c.get("/v1/predictions", q, &tj); err != nil {
		return core.BidTable{}, err
	}
	_, table := FromJSON(tj)
	return table, nil
}

// Tables fetches several combos' bid tables in one round trip via the
// batch endpoint (GET /v1/tables), returned in request order. Combos are
// addressed by their canonical names as listed by Combos; the batch
// endpoint does not translate account-obfuscated zones, so Account is not
// sent.
func (c *Client) Tables(combos []spot.Combo, probability float64) ([]TableJSON, error) {
	if len(combos) == 0 {
		return nil, fmt.Errorf("service client: no combos requested")
	}
	parts := make([]string, len(combos))
	for i, combo := range combos {
		parts[i] = combo.String()
	}
	q := url.Values{}
	q.Set("combos", strings.Join(parts, ","))
	q.Set("probability", strconv.FormatFloat(probability, 'f', -1, 64))
	var out []TableJSON
	if err := c.get("/v1/tables", q, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Advise asks the service directly for the smallest bid guaranteeing the
// duration; unlike BidFor it can escalate beyond the published table span.
func (c *Client) Advise(combo spot.Combo, probability float64, d time.Duration) (core.Quote, error) {
	q := url.Values{}
	q.Set("zone", string(combo.Zone))
	q.Set("type", string(combo.Type))
	q.Set("probability", strconv.FormatFloat(probability, 'f', -1, 64))
	q.Set("duration", d.String())
	if c.Account != "" {
		q.Set("account", c.Account)
	}
	var qj QuoteJSON
	if err := c.get("/v1/advise", q, &qj); err != nil {
		return core.Quote{}, err
	}
	return core.Quote{
		Bid:         qj.Bid,
		Duration:    time.Duration(qj.DurationSeconds * float64(time.Second)),
		Probability: qj.Probability,
	}, nil
}

// BidFor is the common client workflow: fetch the table and pick the
// smallest bid guaranteeing duration d.
func (c *Client) BidFor(combo spot.Combo, probability float64, d time.Duration) (float64, error) {
	table, err := c.Predictions(combo, probability)
	if err != nil {
		return 0, err
	}
	bid, ok := table.BidFor(d)
	if !ok {
		return 0, fmt.Errorf("service client: no tabulated bid guarantees %v for %s", d, combo)
	}
	return bid, nil
}
