package core

import (
	"fmt"
	"math"
	"time"

	"github.com/drafts-go/drafts/internal/spot"
)

// AdviseSurface is the precomputed form of AdviseContext's bid-escalation
// scan for one (combo, probability): the full escalation sequence the scan
// would walk, materialized once at refresh time as two parallel uint32
// arrays. Bids holds the tick-aligned bid at each escalation step (strictly
// increasing — consecutive duplicate ticks from RoundToTick at tiny bids
// are collapsed, keeping the first, which is the entry the scan would
// return); Guar holds the guaranteed duration at that bid in grid steps.
// Lookup answers the same question as AdviseContext — the first escalation
// entry whose guarantee covers the requested duration — in O(1) for grid
// durations and O(log n) within one grid cell otherwise, without touching
// price history.
//
// Surfaces are immutable after construction. Build them only through
// (*Predictor).Surface or NewAdviseSurface; a hand-assembled literal lacks
// the internal running-max and grid indexes and will not answer lookups.
type AdviseSurface struct {
	// Probability is the durability target every guarantee is made at.
	Probability float64
	// Step is the price grid period guarantees are quantized to.
	Step time.Duration
	// Bids is the escalation sequence in price ticks, strictly increasing.
	Bids []uint32
	// Guar[i] is the guaranteed duration at Bids[i], in Steps.
	Guar []uint32

	// max[i] is the running maximum of Guar[:i+1]. Guarantees are not
	// monotone in the bid, but the scan's answer — the first entry covering
	// the request — is exactly the first index where the running max
	// crosses the requested step count, which is binary-searchable.
	max []uint32
	// gridK is the fixed duration grid in steps (hourly to one day,
	// 6-hourly to one week, daily to 90 days); gridAt[g] is the first
	// escalation index covering gridK[g], or -1 when even the ceiling bid
	// cannot guarantee it. A grid hit answers with one array read; an
	// off-grid duration binary-searches only between its two grid
	// neighbours' answers.
	gridK  []uint32
	gridAt []int32
}

// maxSurfaceEntries bounds surface construction against pathological
// parameters (a TableRatio barely above 1 could enumerate every tick up to
// the ceiling). Surface construction bails past it and callers fall back to
// the scan path; default parameters stay orders of magnitude below.
const maxSurfaceEntries = 1 << 16

// Surface materializes the AdviseContext escalation for the predictor's
// current history. It walks the identical bid sequence — minimum bid,
// TableRatio escalation, tick rounding, ceiling clamp at one tick above
// 1.25x the highest retained price — so Lookup on the result returns
// bit-identical quotes to the scan. ok is false when there is no price
// history yet (the scan would also refuse) or the escalation exceeds
// maxSurfaceEntries.
func (p *Predictor) Surface() (*AdviseSurface, bool) {
	bid0, ok := p.MinBid()
	if !ok {
		return nil, false
	}
	maxSeen := 0.0
	for _, v := range p.hist() {
		if v > maxSeen {
			maxSeen = v
		}
	}
	ceiling := spot.NextTickAbove(1.25 * maxSeen)
	if ceiling < bid0 {
		ceiling = bid0
	}
	s := &AdviseSurface{Probability: p.params.Probability, Step: p.step}
	for bid := bid0; ; bid *= p.params.TableRatio {
		tb := spot.RoundToTick(bid)
		if tb > ceiling {
			tb = ceiling
		}
		tick := uint32(spot.Ticks(tb))
		if n := len(s.Bids); n == 0 || s.Bids[n-1] < tick {
			g, _ := p.GuaranteeFor(tb)
			s.Bids = append(s.Bids, tick)
			s.Guar = append(s.Guar, uint32(g/p.step))
		}
		if tb >= ceiling {
			break
		}
		if len(s.Bids) > maxSurfaceEntries {
			return nil, false
		}
	}
	s.finish()
	mSurfaceBuilds.Load().Inc()
	return s, true
}

// NewAdviseSurface reassembles a surface from its wire arrays (a replica
// rebuilding what the writer shipped). The arrays are retained, not copied.
// Given the arrays a writer's Surface produced, the rebuilt surface answers
// every Lookup identically.
func NewAdviseSurface(probability float64, step time.Duration, bids, guar []uint32) (*AdviseSurface, error) {
	if !(probability > 0 && probability < 1) || math.IsNaN(probability) {
		return nil, fmt.Errorf("core: surface probability %v outside (0, 1)", probability)
	}
	if step <= 0 {
		return nil, fmt.Errorf("core: non-positive surface step %v", step)
	}
	if len(bids) == 0 {
		return nil, fmt.Errorf("core: empty surface")
	}
	if len(bids) != len(guar) {
		return nil, fmt.Errorf("core: surface arrays disagree: %d bids, %d guarantees", len(bids), len(guar))
	}
	for i := 1; i < len(bids); i++ {
		if bids[i] <= bids[i-1] {
			return nil, fmt.Errorf("core: surface bids not strictly increasing at index %d", i)
		}
	}
	s := &AdviseSurface{Probability: probability, Step: step, Bids: bids, Guar: guar}
	s.finish()
	return s, nil
}

// finish builds the running-max and duration-grid indexes.
func (s *AdviseSurface) finish() {
	s.max = make([]uint32, len(s.Guar))
	var m uint32
	for i, g := range s.Guar {
		if g > m {
			m = g
		}
		s.max[i] = m
	}
	s.gridK = buildSurfaceGrid(s.Step)
	s.gridAt = make([]int32, len(s.gridK))
	for gi, k := range s.gridK {
		s.gridAt[gi] = int32(firstCovering(s.max, k))
	}
}

// buildSurfaceGrid returns the fixed duration grid in steps: hourly through
// one day, 6-hourly through one week, daily through 90 days. Grid points
// that collapse under a coarse step are deduplicated.
func buildSurfaceGrid(step time.Duration) []uint32 {
	ks := make([]uint32, 0, 131)
	add := func(h int) {
		k := StepsFor(time.Duration(h)*time.Hour, step)
		if k <= 0 {
			return
		}
		if n := len(ks); n > 0 && ks[n-1] >= uint32(k) {
			return
		}
		ks = append(ks, uint32(k))
	}
	for h := 1; h <= 24; h++ {
		add(h)
	}
	for h := 30; h <= 168; h += 6 {
		add(h)
	}
	for h := 192; h <= 2160; h += 24 {
		add(h)
	}
	return ks
}

// firstCovering returns the first index whose running-max guarantee reaches
// k steps, or -1 when none does.
func firstCovering(max []uint32, k uint32) int {
	lo, hi := 0, len(max)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if max[mid] >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(max) {
		return -1
	}
	return lo
}

// Lookup answers AdviseContext's question from the surface: the quote at
// the first escalation entry guaranteeing d, bit-identical to what the scan
// would return over the same history. ok is false when d is non-positive or
// no bid up to the ceiling can guarantee it (the scan's error cases); the
// caller renders the refusal via CannotGuarantee.
//
//drafts:nonalloc
func (s *AdviseSurface) Lookup(d time.Duration) (Quote, bool) {
	mSurfaceLookups.Load().Inc()
	k := StepsFor(d, s.Step)
	if k <= 0 || len(s.Bids) == 0 {
		return Quote{}, false
	}
	kk := uint32(k)
	// Grid snap: locate the largest grid duration not exceeding the request.
	lo, hi := 0, len(s.gridK)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.gridK[mid] <= kk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	gf := lo - 1
	lo, hi = 0, len(s.max)
	if gf >= 0 {
		i := s.gridAt[gf]
		if i < 0 {
			// Even a shorter grid duration is unguaranteeable, so d is too.
			return Quote{}, false
		}
		if s.gridK[gf] == kk {
			// Exact grid hit: one precomputed read.
			return s.quoteAt(int(i)), true
		}
		lo = int(i)
	}
	if gc := gf + 1; gc < len(s.gridAt) {
		if i := s.gridAt[gc]; i >= 0 {
			hi = int(i) + 1
		}
	}
	// Off-grid refinement: first covering entry between the grid
	// neighbours' answers.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.max[mid] >= kk {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(s.max) || s.max[lo] < kk {
		return Quote{}, false
	}
	return s.quoteAt(lo), true
}

// quoteAt renders escalation entry i as a quote. At any index Lookup
// returns, Guar[i] equals the running max (the max was raised there), so
// this is the scan's exact quote.
//
//drafts:nonalloc
func (s *AdviseSurface) quoteAt(i int) Quote {
	return Quote{
		Bid:         spot.FromTicks(int(s.Bids[i])),
		Duration:    time.Duration(s.Guar[i]) * s.Step,
		Probability: s.Probability,
	}
}

// Best returns the quote at the ceiling bid — the strongest guarantee the
// surface can make, and the "best" the scan path reports when refusing.
func (s *AdviseSurface) Best() Quote {
	if len(s.Bids) == 0 {
		return Quote{}
	}
	return s.quoteAt(len(s.Bids) - 1)
}

// CannotGuarantee builds the refusal for a failed Lookup, byte-identical to
// AdviseContext's error so surface-serving nodes render the same envelope
// the scan path would.
func (s *AdviseSurface) CannotGuarantee(d time.Duration) error {
	best := s.Best()
	return fmt.Errorf("core: cannot guarantee %v at p=%v (best: %v at bid %.4f)",
		d, s.Probability, best.Duration, best.Bid)
}
