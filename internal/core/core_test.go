package core

import (
	"math"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/spot"
)

var t0 = time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC)

func seriesOf(prices ...float64) *history.Series {
	s := history.NewSeries(t0)
	for _, p := range prices {
		s.Append(p)
	}
	return s
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Probability: 0},
		{Probability: 1},
		{Probability: 0.95, Confidence: 1.5},
		{Probability: 0.95, MaxHistory: -1},
		{Probability: 0.95, TableRatio: 0.9},
		{Probability: 0.95, TableSpanMult: 0.5},
	}
	for i, p := range bad {
		if _, err := p.withDefaults(); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	p, err := Params{Probability: 0.95}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if p.Confidence != 0.99 || p.MaxHistory != DefaultMaxHistory || p.TableRatio != 1.05 || p.TableSpanMult != 4 {
		t.Errorf("defaults wrong: %+v", p)
	}
}

func TestQuantileSplit(t *testing.T) {
	p := Params{Probability: 0.95}
	if got := p.PriceQuantile(); math.Abs(got-math.Sqrt(0.95)) > 1e-15 {
		t.Errorf("PriceQuantile = %v", got)
	}
	if got := p.DurationQuantile(); math.Abs(got-(1-math.Sqrt(0.95))) > 1e-15 {
		t.Errorf("DurationQuantile = %v", got)
	}
	// The product of the two survival probabilities is the target.
	prod := p.PriceQuantile() * (1 - p.DurationQuantile())
	if math.Abs(prod-0.95) > 1e-12 {
		t.Errorf("quantile product = %v, want 0.95", prod)
	}
}

func TestBidTableBidFor(t *testing.T) {
	tab := BidTable{Points: []BidPoint{
		{Bid: 0.10, Duration: time.Hour},
		{Bid: 0.20, Duration: 3 * time.Hour},
		{Bid: 0.40, Duration: 12 * time.Hour},
	}}
	if b, ok := tab.BidFor(time.Hour); !ok || b != 0.10 {
		t.Errorf("BidFor(1h) = %v, %v", b, ok)
	}
	if b, ok := tab.BidFor(2 * time.Hour); !ok || b != 0.20 {
		t.Errorf("BidFor(2h) = %v, %v", b, ok)
	}
	if b, ok := tab.BidFor(12 * time.Hour); !ok || b != 0.40 {
		t.Errorf("BidFor(12h) = %v, %v", b, ok)
	}
	if _, ok := tab.BidFor(13 * time.Hour); ok {
		t.Error("unguaranteeable duration accepted")
	}
	if mb, ok := tab.MinBid(); !ok || mb != 0.10 {
		t.Errorf("MinBid = %v, %v", mb, ok)
	}
	if _, ok := (BidTable{}).MinBid(); ok {
		t.Error("empty table MinBid should fail")
	}
}

func TestEnforceMonotone(t *testing.T) {
	pts := []BidPoint{
		{Bid: 1, Duration: 5 * time.Hour},
		{Bid: 2, Duration: 2 * time.Hour},
		{Bid: 3, Duration: 9 * time.Hour},
	}
	enforceMonotone(pts)
	if pts[1].Duration != 5*time.Hour || pts[2].Duration != 9*time.Hour {
		t.Errorf("monotone enforcement wrong: %+v", pts)
	}
}

func TestSurvival(t *testing.T) {
	s := seriesOf(0.1, 0.1, 0.3, 0.1, 0.5, 0.1)
	// Bid 0.2 from index 0: first price >= 0.2 at index 2.
	if steps, cens := Survival(s, 0, 0.2); steps != 2 || cens {
		t.Errorf("Survival = %d, %v; want 2, false", steps, cens)
	}
	// Bid 0.4 from index 0: terminated at index 4.
	if steps, cens := Survival(s, 0, 0.4); steps != 4 || cens {
		t.Errorf("Survival = %d, %v; want 4, false", steps, cens)
	}
	// Bid 1.0 never reached: censored with observed-so-far 5.
	if steps, cens := Survival(s, 0, 1.0); steps != 5 || !cens {
		t.Errorf("Survival = %d, %v; want 5, true", steps, cens)
	}
	// Equality terminates (conservative reading).
	if steps, _ := Survival(s, 0, 0.3); steps != 2 {
		t.Errorf("price == bid should terminate: %d", steps)
	}
	// Out of range.
	if steps, cens := Survival(s, 99, 0.2); steps != 0 || !cens {
		t.Errorf("out-of-range Survival = %d, %v", steps, cens)
	}
}

func TestSurvives(t *testing.T) {
	s := seriesOf(0.1, 0.1, 0.3, 0.1)
	if !Survives(s, 0, 0.2, 2) {
		t.Error("surviving exactly the needed steps should succeed")
	}
	if Survives(s, 0, 0.2, 3) {
		t.Error("terminated before completing should fail")
	}
}

func TestStepsFor(t *testing.T) {
	step := spot.UpdatePeriod
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {-time.Hour, 0}, {time.Minute, 1}, {5 * time.Minute, 1},
		{6 * time.Minute, 2}, {time.Hour, 12}, {3300 * time.Second, 11},
	}
	for _, c := range cases {
		if got := StepsFor(c.d, step); got != c.want {
			t.Errorf("StepsFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestMinBid(t *testing.T) {
	if got := minBid(0.1000); got != 0.1001 {
		t.Errorf("minBid(0.1) = %v", got)
	}
	if got := minBid(0.10007); got <= 0.10007 {
		t.Errorf("minBid not strictly above input: %v", got)
	}
}

func TestGeometricGrid(t *testing.T) {
	g := geometricGrid(0.1, 0.2, 1.05)
	if len(g) == 0 || g[0] != 0.1 {
		t.Fatalf("grid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly ascending: %v", g)
		}
	}
	if g[len(g)-1] < 0.2 {
		t.Errorf("grid does not reach ceiling: %v", g)
	}
	// Tiny ratio near the tick floor must still ascend (tick bumping).
	g2 := geometricGrid(0.0001, 0.0005, 1.05)
	for i := 1; i < len(g2); i++ {
		if g2[i] <= g2[i-1] {
			t.Fatalf("low grid not ascending: %v", g2)
		}
	}
	// Inverted bounds collapse to a single level.
	g3 := geometricGrid(1.0, 0.5, 1.05)
	if len(g3) == 0 {
		t.Error("inverted grid empty")
	}
}

func TestDurationBoundScanBasics(t *testing.T) {
	// Price oscillates with period 10: nine steps low, one high.
	var prices []float64
	for i := 0; i < 2000; i++ {
		if i%10 == 9 {
			prices = append(prices, 0.5)
		} else {
			prices = append(prices, 0.1)
		}
	}
	// A bid of 0.3 dies at each spike; survival durations are 1..9.
	steps, ok := durationBoundScan(prices, 0.3, 0.025, 0.99)
	if !ok {
		t.Fatal("no bound")
	}
	if steps < 1 || steps > 2 {
		t.Errorf("bound = %d steps; the 2.5%% quantile of {1..9} cycles should be 1", steps)
	}
	// A bid above every price: only censored episodes {1..n-1}; the bound
	// is the k-th smallest face value.
	steps2, ok := durationBoundScan(prices, 9.9, 0.025, 0.99)
	if !ok {
		t.Fatal("no bound for high bid")
	}
	if steps2 <= steps {
		t.Errorf("higher bid bound %d not above lower bid bound %d", steps2, steps)
	}
}

func TestDurationBoundScanEmptyAndDegenerate(t *testing.T) {
	if _, ok := durationBoundScan(nil, 0.5, 0.025, 0.99); ok {
		t.Error("empty scan should fail")
	}
	// Bid below every price: no episode ever starts.
	if _, ok := durationBoundScan([]float64{1, 1, 1}, 0.5, 0.025, 0.99); ok {
		t.Error("never-startable bid should have no sample")
	}
}

// TestTrackerMatchesScan: the incremental tracker and the single-shot scan
// are two implementations of the same estimator and must agree exactly.
func TestTrackerMatchesScan(t *testing.T) {
	s := mustGen(t, spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}, 4000)
	for _, level := range []float64{0.05, 0.12, 0.3, 0.8, 2.0} {
		tr := newLevelTracker(level, 0)
		for i, p := range s.Prices {
			tr.observe(i, p)
			if i%997 == 0 && i > 0 {
				want, wok := durationBoundScan(s.Prices[:i+1], level, 0.025, 0.99)
				got, gok := tr.bound(0.025, 0.99)
				if wok != gok || (wok && want != got) {
					t.Fatalf("level %v index %d: tracker %d,%v vs scan %d,%v", level, i, got, gok, want, wok)
				}
			}
		}
	}
}

// TestTrackerWindowMatchesWindowedScan: with a retention window, the
// tracker must agree with a scan over just the windowed slice.
func TestTrackerWindowMatchesWindowedScan(t *testing.T) {
	s := mustGen(t, spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}, 6000)
	const w = 1500
	level := 0.3
	tr := newLevelTracker(level, w)
	for i, p := range s.Prices {
		tr.observe(i, p)
		if i%1499 == 0 && i > w {
			lo := i - w
			want, wok := durationBoundScan(s.Prices[lo:i+1], level, 0.025, 0.99)
			got, gok := tr.bound(0.025, 0.99)
			if wok != gok {
				t.Fatalf("index %d: availability %v vs %v", i, gok, wok)
			}
			if wok {
				// The windowed scan measures durations within the slice;
				// the tracker resolved some episodes against prices beyond
				// the window start but its censoring matches. Allow exact
				// match on the probe level which has frequent resolutions.
				if got != want {
					t.Fatalf("index %d: tracker %d vs windowed scan %d", i, got, want)
				}
			}
		}
	}
}
