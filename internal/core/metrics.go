package core

import (
	"sync/atomic"

	"github.com/drafts-go/drafts/internal/telemetry"
)

// Package-level instrument slots. They default to nil (telemetry off): each
// recording site then costs one atomic pointer load and one branch, so
// library users and benchmarks that never call RegisterMetrics pay nothing
// measurable. atomic.Pointer makes registration safe even if a predictor is
// already running.
var (
	mObservations      atomic.Pointer[telemetry.Counter]
	mCensoredEpisodes  atomic.Pointer[telemetry.Counter]
	mAdviseCalls       atomic.Pointer[telemetry.Counter]
	mAdviseEscalations atomic.Pointer[telemetry.Counter]
	mSurfaceBuilds     atomic.Pointer[telemetry.Counter]
	mSurfaceLookups    atomic.Pointer[telemetry.Counter]
)

// RegisterMetrics wires the predictor-level counters into r. Call once at
// startup, before heavy predictor traffic; calling with the same registry
// again is idempotent.
func RegisterMetrics(r *telemetry.Registry) {
	mObservations.Store(r.Counter("drafts_predictor_observations_total",
		"Price observations ingested by DrAFTS predictors."))
	mCensoredEpisodes.Store(r.Counter("drafts_predictor_censored_episodes_total",
		"Right-censored survival episodes entering duration samples."))
	mAdviseCalls.Store(r.Counter("drafts_predictor_advise_total",
		"Advise quote requests answered."))
	mAdviseEscalations.Store(r.Counter("drafts_predictor_advise_escalations_total",
		"Advise searches that escalated past the published table span."))
	mSurfaceBuilds.Store(r.Counter("drafts_predictor_surface_builds_total",
		"Advise surfaces materialized at refresh."))
	mSurfaceLookups.Store(r.Counter("drafts_predictor_surface_lookups_total",
		"Advise quotes answered from a precomputed surface."))
}
