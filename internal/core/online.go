package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/qbets"
	"github.com/drafts-go/drafts/internal/spot"
)

// Predictor is the online DrAFTS forecaster for one market: feed it market
// prices as they are announced and query bids at the current moment. This
// is the form the DrAFTS web service runs (§3.3: "the predictor state can
// be updated incrementally whenever a new price data point is available").
type Predictor struct {
	params Params
	price  *qbets.Predictor

	start time.Time
	step  time.Duration

	prices []float64 // retained price history (window of MaxHistory)
	head   int
	count  int // total observations ever
}

// Quote is a bid recommendation.
type Quote struct {
	Bid float64
	// Duration is the probabilistically guaranteed continuous availability
	// at this bid.
	Duration time.Duration
	// Probability is the durability target the guarantee is made at.
	Probability float64
}

// NewPredictor creates an online predictor whose first observation
// corresponds to time start on the standard 5-minute grid.
func NewPredictor(params Params, start time.Time) (*Predictor, error) {
	params, err := params.withDefaults()
	if err != nil {
		return nil, err
	}
	pq, err := qbets.New(priceQBETSConfig(params))
	if err != nil {
		return nil, err
	}
	return &Predictor{
		params: params,
		price:  pq,
		start:  start,
		step:   spot.UpdatePeriod,
	}, nil
}

// Params returns the effective (default-filled) parameters.
func (p *Predictor) Params() Params { return p.params }

// Clone returns an independent deep copy of the predictor. Feeding original
// and clone the same subsequent observations yields identical tables and
// quotes — the invariant behind the service's incremental refresh, which
// clones the previously installed (and immutably serving) predictor and
// observes only the ticks that arrived since, instead of re-ingesting the
// whole history window.
func (p *Predictor) Clone() *Predictor {
	q := *p
	q.price = p.price.Clone()
	q.prices = append([]float64(nil), p.prices[p.head:]...)
	q.head = 0
	return &q
}

// Observe feeds the next market price announcement.
func (p *Predictor) Observe(price float64) {
	if math.IsNaN(price) || math.IsInf(price, 0) || price <= 0 {
		return
	}
	mObservations.Load().Inc()
	p.price.Observe(price)
	p.prices = append(p.prices, price)
	p.count++
	if p.params.MaxHistory > 0 && p.window() > p.params.MaxHistory {
		p.head++
		if p.head > len(p.prices)/2 && p.head > 4096 {
			p.prices = append(p.prices[:0], p.prices[p.head:]...)
			p.head = 0
		}
	}
}

// ObserveSeries bulk-feeds a recorded series (e.g. three months of history
// fetched at startup) and aligns the predictor clock with it.
func (p *Predictor) ObserveSeries(s *history.Series) {
	if p.count == 0 {
		p.start = s.Start
		p.step = s.Step
	}
	for _, v := range s.Prices {
		p.Observe(v)
	}
}

func (p *Predictor) window() int { return len(p.prices) - p.head }

func (p *Predictor) hist() []float64 { return p.prices[p.head:] }

// Len returns the number of retained observations.
func (p *Predictor) Len() int { return p.window() }

// Now returns the time of the latest observation.
func (p *Predictor) Now() time.Time {
	if p.count == 0 {
		return p.start
	}
	return p.start.Add(time.Duration(p.count-1) * p.step)
}

// Warmed reports whether the price bound carries full confidence.
func (p *Predictor) Warmed() bool { return p.price.Warmed() }

// MinBid returns the smallest bid DrAFTS will quote right now: one tick
// above the QBETS upper bound on the next market price.
func (p *Predictor) MinBid() (float64, bool) {
	upper, ok := p.price.Bound()
	if !ok {
		return 0, false
	}
	return minBid(upper), true
}

// GuaranteeFor returns the duration an instance bidding `bid` survives
// with probability at least Params.Probability, given the current history.
// ok is false with no data; a zero duration means nothing can be promised.
func (p *Predictor) GuaranteeFor(bid float64) (time.Duration, bool) {
	h := p.hist()
	if len(h) == 0 {
		return 0, false
	}
	steps, ok := durationBoundScan(h, bid, p.params.DurationQuantile(), p.params.Confidence)
	if !ok {
		return 0, false
	}
	return time.Duration(steps) * p.step, true
}

// Table builds the service-style bid table at the current moment: the
// minimum bid, then 5% increments up to TableSpanMult times the minimum
// (§3.3). Durations are monotone non-decreasing in the bid.
func (p *Predictor) Table() (BidTable, bool) {
	bid0, ok := p.MinBid()
	if !ok {
		return BidTable{}, false
	}
	t := BidTable{At: p.Now(), Probability: p.params.Probability}
	limit := bid0 * p.params.TableSpanMult
	for bid := bid0; bid <= limit+1e-12; bid *= p.params.TableRatio {
		tb := spot.RoundToTick(bid)
		if n := len(t.Points); n > 0 && t.Points[n-1].Bid >= tb {
			continue
		}
		d, _ := p.GuaranteeFor(tb)
		t.Points = append(t.Points, BidPoint{Bid: tb, Duration: d})
	}
	enforceMonotone(t.Points)
	return t, true
}

// Advise returns the smallest bid that guarantees the requested duration
// with the configured probability. The search escalates in TableRatio
// steps from the minimum bid, beyond the service's table span if
// necessary, up to one tick above 1.25x the highest retained price (a bid
// no observed market movement has ever reached). An error is returned if
// even that cannot promise d — the caller should fall back to a reliable
// (On-demand) instance, per the §4.4 cost-optimization strategy.
//
// Advise is the context-free compatibility surface used by the
// simulators and the public API, where no request deadline exists; its
// scan is bounded by the escalation cap above, not by cancellation.
// Serving-path callers must use AdviseContext so deadlines propagate.
func (p *Predictor) Advise(d time.Duration) (Quote, error) {
	//draftsvet:ignore ctxflow deliberate root: context-free public API with a bounded scan; the serving path calls AdviseContext
	return p.AdviseContext(context.Background(), d)
}

// AdviseContext is Advise under a deadline: the bid-escalation scan checks
// ctx between escalation steps (each step runs a full duration-bound scan
// over the retained history, the expensive unit of work) and returns
// ctx.Err() wrapped as soon as the budget is exhausted. The service's
// request-deadline propagation relies on this being the only unbounded
// loop on the query path.
func (p *Predictor) AdviseContext(ctx context.Context, d time.Duration) (Quote, error) {
	mAdviseCalls.Load().Inc()
	if d <= 0 {
		return Quote{}, fmt.Errorf("core: non-positive duration %v", d)
	}
	bid0, ok := p.MinBid()
	if !ok {
		return Quote{}, fmt.Errorf("core: no price history")
	}
	maxSeen := 0.0
	for _, v := range p.hist() {
		if v > maxSeen {
			maxSeen = v
		}
	}
	ceiling := spot.NextTickAbove(1.25 * maxSeen)
	if ceiling < bid0 {
		ceiling = bid0
	}
	span := bid0 * p.params.TableSpanMult
	escalated := false
	var last Quote
	for bid := bid0; ; bid *= p.params.TableRatio {
		if err := ctx.Err(); err != nil {
			return last, fmt.Errorf("core: advise abandoned at bid %.4f: %w", last.Bid, err)
		}
		tb := spot.RoundToTick(bid)
		if tb > ceiling {
			tb = ceiling
		}
		if tb > span && !escalated {
			escalated = true
			mAdviseEscalations.Load().Inc()
		}
		g, _ := p.GuaranteeFor(tb)
		last = Quote{Bid: tb, Duration: g, Probability: p.params.Probability}
		if g >= d {
			return last, nil
		}
		if tb >= ceiling {
			return last, fmt.Errorf("core: cannot guarantee %v at p=%v (best: %v at bid %.4f)",
				d, p.params.Probability, last.Duration, last.Bid)
		}
	}
}
