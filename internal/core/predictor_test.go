package core

import (
	"math"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/stats"
)

func mustGen(t *testing.T, c spot.Combo, n int) *history.Series {
	t.Helper()
	s, err := pricegen.Generator{Seed: 21}.Series(c, t0, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testParams(p float64) Params {
	return Params{Probability: p, MaxHistory: 6000}
}

func TestOnlinePredictorLifecycle(t *testing.T) {
	p, err := NewPredictor(testParams(0.95), t0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.MinBid(); ok {
		t.Error("MinBid with no data should fail")
	}
	if _, ok := p.GuaranteeFor(1); ok {
		t.Error("GuaranteeFor with no data should fail")
	}
	if _, err := p.Advise(time.Hour); err == nil {
		t.Error("Advise with no data should fail")
	}
	if _, err := p.Advise(-time.Hour); err == nil {
		t.Error("negative duration accepted")
	}
	if !p.Now().Equal(t0) {
		t.Errorf("Now with no data = %v", p.Now())
	}

	// Calm series carry strong lag-1 autocorrelation, so the effective
	// sample size is a small fraction of the raw length; 5000 points are
	// needed before the corrected bound carries full confidence.
	s := mustGen(t, spot.Combo{Zone: "us-east-1b", Type: "c4.large"}, 5000)
	p.ObserveSeries(s)
	if p.Len() != 5000 {
		t.Errorf("Len = %d", p.Len())
	}
	wantNow := t0.Add(4999 * spot.UpdatePeriod)
	if !p.Now().Equal(wantNow) {
		t.Errorf("Now = %v, want %v", p.Now(), wantNow)
	}
	mb, ok := p.MinBid()
	if !ok {
		t.Fatal("no MinBid")
	}
	if cur := s.Prices[s.Len()-1]; mb <= cur {
		t.Errorf("MinBid %v not above current price %v", mb, cur)
	}
	if spot.RoundToTick(mb) != mb {
		t.Errorf("MinBid %v off tick grid", mb)
	}
}

func TestWarmedOnStationaryFeed(t *testing.T) {
	// Warmed is only a sometimes-property on spiky market data (a change
	// point resets the history); on a stationary i.i.d. feed it must hold
	// once the effective sample size clears the binomial minimum.
	p, _ := NewPredictor(testParams(0.95), t0)
	rng := stats.NewRNG(77)
	for i := 0; i < 4000; i++ {
		p.Observe(spot.RoundToTick(0.05 + 0.02*rng.Float64()))
	}
	if !p.Warmed() {
		t.Error("not warmed after 4000 i.i.d. points")
	}
}

func TestObserveIgnoresGarbage(t *testing.T) {
	p, _ := NewPredictor(testParams(0.95), t0)
	p.Observe(math.NaN())
	p.Observe(-1)
	p.Observe(0)
	p.Observe(math.Inf(1))
	if p.Len() != 0 {
		t.Errorf("garbage retained: %d", p.Len())
	}
}

func TestMaxHistoryWindow(t *testing.T) {
	params := testParams(0.95)
	params.MaxHistory = 500
	p, _ := NewPredictor(params, t0)
	for i := 0; i < 3000; i++ {
		p.Observe(0.1)
	}
	if p.Len() != 500 {
		t.Errorf("window = %d, want 500", p.Len())
	}
}

func TestGuaranteeRoughlyMonotoneInBid(t *testing.T) {
	// Raw per-level bounds are estimated from different episode samples,
	// so a higher bid's bound can dip below a lower bid's by a rank or
	// two; BidTable's monotone pass smooths that for users. Here we check
	// the raw estimator never regresses badly and trends upward overall.
	p, _ := NewPredictor(testParams(0.95), t0)
	p.ObserveSeries(mustGen(t, spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}, 5000))
	bids := []float64{0.1, 0.15, 0.25, 0.5, 1.0, 2.0}
	prev := time.Duration(-1)
	var first, last time.Duration
	for i, bid := range bids {
		g, ok := p.GuaranteeFor(bid)
		if !ok {
			t.Fatalf("no guarantee at bid %v", bid)
		}
		if prev > 0 && g < prev*7/10 {
			t.Errorf("guarantee collapsed at bid %v: %v << %v", bid, g, prev)
		}
		prev = g
		if i == 0 {
			first = g
		}
		last = g
	}
	if last < first {
		t.Errorf("highest bid guarantee %v below lowest %v", last, first)
	}
}

func TestAdviseSatisfiesOrErrors(t *testing.T) {
	p, _ := NewPredictor(testParams(0.95), t0)
	p.ObserveSeries(mustGen(t, spot.Combo{Zone: "us-east-1b", Type: "c4.large"}, 5000))
	q, err := p.Advise(time.Hour)
	if err != nil {
		t.Fatalf("Advise(1h) on a calm market failed: %v", err)
	}
	if q.Duration < time.Hour {
		t.Errorf("quote duration %v below request", q.Duration)
	}
	if q.Probability != 0.95 {
		t.Errorf("quote probability %v", q.Probability)
	}
	mb, _ := p.MinBid()
	if q.Bid < mb {
		t.Errorf("quote bid %v below minimum bid %v", q.Bid, mb)
	}
	// A month-long guarantee cannot be promised from ~17 days of data.
	if _, err := p.Advise(30 * 24 * time.Hour); err == nil {
		t.Error("impossible duration accepted")
	}
}

func TestTableShape(t *testing.T) {
	p, _ := NewPredictor(testParams(0.99), t0)
	p.ObserveSeries(mustGen(t, spot.Combo{Zone: "us-east-1b", Type: "m4.xlarge"}, 5000))
	tab, ok := p.Table()
	if !ok {
		t.Fatal("no table")
	}
	if len(tab.Points) < 20 {
		t.Fatalf("table has %d points; 5%% steps to 4x should give ~29", len(tab.Points))
	}
	mb, _ := p.MinBid()
	if tab.Points[0].Bid != mb {
		t.Errorf("table[0] = %v, want min bid %v", tab.Points[0].Bid, mb)
	}
	last := tab.Points[len(tab.Points)-1].Bid
	if last < 3.7*mb || last > 4.3*mb {
		t.Errorf("table span %v..%v not ~4x", mb, last)
	}
	for i := 1; i < len(tab.Points); i++ {
		if tab.Points[i].Bid <= tab.Points[i-1].Bid {
			t.Fatal("bids not ascending")
		}
		if tab.Points[i].Duration < tab.Points[i-1].Duration {
			t.Fatal("durations not monotone")
		}
	}
	if tab.Probability != 0.99 {
		t.Errorf("table probability %v", tab.Probability)
	}
}

func TestBatchValidation(t *testing.T) {
	s := mustGen(t, spot.Combo{Zone: "us-east-1b", Type: "c4.large"}, 1000)
	b := &Batch{Series: s, Params: testParams(0.95), MaxBid: 1}
	if _, err := b.Tables([]int{5, 5}); err == nil {
		t.Error("non-ascending queries accepted")
	}
	if _, err := b.Tables([]int{-1}); err == nil {
		t.Error("negative query accepted")
	}
	if _, err := b.Tables([]int{5000}); err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, err := (&Batch{Series: s, Params: testParams(0.95)}).Tables([]int{10}); err == nil {
		t.Error("missing MaxBid accepted")
	}
	if _, err := (&Batch{Params: testParams(0.95), MaxBid: 1}).Tables([]int{0}); err == nil {
		t.Error("missing series accepted")
	}
	if _, err := (&Batch{Series: s, Params: Params{}, MaxBid: 1}).Tables([]int{0}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestBatchMatchesOnline: the batch evaluator and the online predictor
// must produce the same minimum bid and the same min-bid duration bound
// when fed the same prefix.
func TestBatchMatchesOnline(t *testing.T) {
	combo := spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}
	s := mustGen(t, combo, 4000)
	params := testParams(0.95)
	queries := []int{2500, 3200, 3999}
	od, _ := spot.ODPrice(combo.Type, combo.Zone.Region())
	tables, err := (&Batch{Series: s, Params: params, MaxBid: SuggestedMaxBid(s, od)}).Tables(queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		p, _ := NewPredictor(params, t0)
		p.ObserveSeries(s.Slice(0, q+1))
		mbOnline, ok := p.MinBid()
		if !ok {
			t.Fatal("no online min bid")
		}
		mbBatch, ok := tables[qi].MinBid()
		if !ok {
			t.Fatal("no batch min bid")
		}
		if mbOnline != mbBatch {
			t.Errorf("query %d: min bid online %v vs batch %v", q, mbOnline, mbBatch)
		}
		gOnline, _ := p.GuaranteeFor(mbOnline)
		// The batch table's first point is the min-bid entry, possibly
		// raised by the monotonicity pass; it must be at least the online
		// guarantee and equal before enforcement.
		if tables[qi].Points[0].Duration < gOnline {
			t.Errorf("query %d: batch min-bid duration %v below online %v",
				q, tables[qi].Points[0].Duration, gOnline)
		}
		if !tables[qi].At.Equal(s.TimeAt(q)) {
			t.Errorf("query %d: table timestamp %v", q, tables[qi].At)
		}
	}
}

// TestBacktestCoverage is the miniature Table-1 experiment and the
// headline correctness property: random requests priced by DrAFTS must
// survive with frequency at least the target probability.
func TestBacktestCoverage(t *testing.T) {
	combos := []spot.Combo{
		{Zone: "us-east-1b", Type: "c4.large"},   // calm
		{Zone: "us-west-1a", Type: "c3.2xlarge"}, // volatile
		{Zone: "us-east-1e", Type: "c4.4xlarge"}, // spiky
	}
	const (
		target  = 0.95
		nReq    = 150
		nSeries = 16000 // ~55 days
	)
	rng := stats.NewRNG(4242)
	for _, combo := range combos {
		s := mustGen(t, combo, nSeries)
		od, _ := spot.ODPrice(combo.Type, combo.Zone.Region())
		params := testParams(target)

		maxSteps := 12 * 12 // 12 hours
		// Queries in the second half, leaving room for the longest request.
		qset := map[int]bool{}
		for len(qset) < nReq {
			qset[8000+rng.Intn(nSeries-8000-maxSteps-1)] = true
		}
		var queries []int
		for q := range qset {
			queries = append(queries, q)
		}
		sortInts(queries)

		maxBid := SuggestedMaxBid(s, od)
		tables, err := (&Batch{Series: s, Params: params, MaxBid: maxBid}).Tables(queries)
		if err != nil {
			t.Fatal(err)
		}
		success := 0
		for qi, q := range queries {
			need := 1 + rng.Intn(maxSteps) // up to 12 hours
			bid, ok := tables[qi].BidFor(time.Duration(need) * s.Step)
			if !ok {
				// The table cannot promise this duration even at its top
				// level; the experiment bids the table maximum.
				bid = tables[qi].Points[len(tables[qi].Points)-1].Bid
			}
			if Survives(s, q, bid, need) {
				success++
			}
		}
		frac := float64(success) / float64(len(queries))
		slack := 2.5 * math.Sqrt(target*(1-target)/float64(nReq))
		if frac < target-slack {
			t.Errorf("%v: success fraction %.3f below target %.2f (slack %.3f)", combo, frac, target, slack)
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestSuggestedMaxBid sanity.
func TestSuggestedMaxBid(t *testing.T) {
	s := seriesOf(0.1, 0.5, 0.2)
	if got := SuggestedMaxBid(s, 0.1); math.Abs(got-0.625) > 1e-9 {
		t.Errorf("SuggestedMaxBid = %v, want 1.25*max", got)
	}
	if got := SuggestedMaxBid(s, 1.0); got != 1.5 {
		t.Errorf("SuggestedMaxBid = %v, want 1.5*OD", got)
	}
}

// TestAblationFlagsPlumbed: the DisableChangePoints / DisableAutocorr
// params must actually alter the predictor's behaviour on data where the
// mechanisms matter.
func TestAblationFlagsPlumbed(t *testing.T) {
	// Regime-switching series: with change-point detection the bound
	// adapts downward after the cheap regime arrives; without it the old
	// expensive tail dominates far longer.
	mk := func(noCP, noAC bool) *Predictor {
		params := testParams(0.95)
		params.DisableChangePoints = noCP
		params.DisableAutocorr = noAC
		p, err := NewPredictor(params, t0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	rng := stats.NewRNG(88)
	withCP, withoutCP := mk(false, true), mk(true, true)
	for i := 0; i < 2000; i++ {
		v := spot.RoundToTick(1 + 0.02*rng.Float64())
		withCP.Observe(v)
		withoutCP.Observe(v)
	}
	for i := 0; i < 1500; i++ {
		v := spot.RoundToTick(0.1 + 0.002*rng.Float64())
		withCP.Observe(v)
		withoutCP.Observe(v)
	}
	a, _ := withCP.MinBid()
	b, _ := withoutCP.MinBid()
	if a >= b {
		t.Errorf("change-point predictor bid %v not below detector-less %v after a price drop", a, b)
	}

	// Strongly autocorrelated series: the ESS correction must push the
	// bound at least as high as the uncorrected one.
	onAC, offAC := mk(true, false), mk(true, true)
	x := 0.0
	for i := 0; i < 4000; i++ {
		x = 0.97*x + rng.NormFloat64()
		v := spot.RoundToTick(5 + 0.1*x)
		onAC.Observe(v)
		offAC.Observe(v)
	}
	ba, _ := onAC.MinBid()
	bb, _ := offAC.MinBid()
	if ba < bb {
		t.Errorf("autocorr-corrected bid %v below uncorrected %v", ba, bb)
	}
}
