// Package core implements DrAFTS — Durability Agreements From Time Series —
// the paper's primary contribution (§3).
//
// DrAFTS answers: what is the smallest maximum bid that lets a Spot
// instance run for at least a requested duration with probability at least
// p? The methodology is a two-step application of the QBETS non-parametric
// quantile-bound forecaster:
//
//  1. Over the market price history, QBETS predicts an upper confidence
//     bound (confidence c, quantile q = sqrt(p)) on the next market price.
//     One price tick ($0.0001) is added so the bid is strictly above any
//     quoted price, accounting for the provider's freedom to terminate an
//     instance whose bid exactly equals the market price. This is the
//     minimum bid.
//  2. For each candidate bid value, the history induces a series of "bid
//     survival durations": from each point in time, how long until the
//     market price rose to meet the bid. QBETS predicts a lower confidence
//     bound (confidence c) on the (1-q)-quantile of that series — a
//     duration the bid survives with probability at least q, conditioned
//     on the instance starting at all.
//
// The product of the two quantiles meets the target probability p, which is
// why each side uses sqrt(p) (§3.2). The pairs (bid, duration bound) form a
// BidTable; the service exposes tables with bids in 5% increments up to 4x
// the minimum (§3.3).
//
// Durations whose terminating price rise has not happened yet by analysis
// time are right-censored; they enter the sample at their observed-so-far
// length, which can only lower a lower bound — the conservative direction.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/drafts-go/drafts/internal/history"
)

// Params configures a DrAFTS predictor.
type Params struct {
	// Probability is the target durability p in (0,1): the chance the
	// instance survives its full requested duration.
	Probability float64
	// Confidence is the QBETS confidence level c (default 0.99, the value
	// used throughout the paper).
	Confidence float64
	// MaxHistory caps the retained price history in grid steps. Default is
	// three months of 5-minute data (§3.3: "each DrAFTS maximum bid was
	// computed using the previous 3 months pricing data").
	MaxHistory int
	// TableRatio is the multiplicative spacing of bid-table levels
	// (default 1.05, the service's 5% increments).
	TableRatio float64
	// TableSpanMult caps table levels at this multiple of the minimum bid
	// (default 4, per the service description in §3.3).
	TableSpanMult float64
	// DisableChangePoints turns off QBETS change-point detection on the
	// price series (ablation).
	DisableChangePoints bool
	// DisableAutocorr turns off the autocorrelation effective-sample-size
	// correction (ablation).
	DisableAutocorr bool
}

// DefaultMaxHistory is three months of 5-minute price points.
const DefaultMaxHistory = 3 * 30 * 24 * 12

func (p Params) withDefaults() (Params, error) {
	if !(p.Probability > 0 && p.Probability < 1) {
		return p, fmt.Errorf("core: probability %v outside (0,1)", p.Probability)
	}
	if p.Confidence == 0 {
		p.Confidence = 0.99
	}
	if !(p.Confidence > 0 && p.Confidence < 1) {
		return p, fmt.Errorf("core: confidence %v outside (0,1)", p.Confidence)
	}
	if p.MaxHistory == 0 {
		p.MaxHistory = DefaultMaxHistory
	}
	if p.MaxHistory < 0 {
		return p, fmt.Errorf("core: negative max history")
	}
	if p.TableRatio == 0 {
		p.TableRatio = 1.05
	}
	if p.TableRatio <= 1 {
		return p, fmt.Errorf("core: table ratio %v must exceed 1", p.TableRatio)
	}
	if p.TableSpanMult == 0 {
		p.TableSpanMult = 4
	}
	if p.TableSpanMult < 1 {
		return p, fmt.Errorf("core: table span %v must be at least 1", p.TableSpanMult)
	}
	return p, nil
}

// WithDefaults returns the parameters with every zero field replaced by its
// documented default, validating ranges — the effective parameters a
// predictor constructed from p reports via Predictor.Params. Callers use it
// to decide whether an existing predictor is interchangeable with one that
// a given Params value would construct.
func (p Params) WithDefaults() (Params, error) { return p.withDefaults() }

// PriceQuantile returns q = sqrt(p), the quantile targeted on the price
// series.
func (p Params) PriceQuantile() float64 { return math.Sqrt(p.Probability) }

// DurationQuantile returns 1 - sqrt(p), the (low) quantile targeted on the
// duration series.
func (p Params) DurationQuantile() float64 { return 1 - math.Sqrt(p.Probability) }

// BidPoint pairs a bid with the duration it probabilistically guarantees.
type BidPoint struct {
	Bid float64
	// Duration is the lower bound on continuous availability: an instance
	// requested with this bid survives at least this long with probability
	// >= the table's Probability. Zero means no duration can be promised.
	Duration time.Duration
}

// BidTable is the bid/duration relationship at one moment (Figure 4): bids
// ascend and guaranteed durations are non-decreasing, as required by the
// market mechanism (higher bids can only survive longer).
type BidTable struct {
	At          time.Time
	Probability float64
	Points      []BidPoint
}

// BidFor returns the smallest tabulated bid whose guaranteed duration is
// at least d. ok is false when even the largest tabulated bid cannot
// promise d.
func (t BidTable) BidFor(d time.Duration) (float64, bool) {
	i := sort.Search(len(t.Points), func(i int) bool { return t.Points[i].Duration >= d })
	if i == len(t.Points) {
		return 0, false
	}
	return t.Points[i].Bid, true
}

// MinBid returns the table's smallest bid (the step-1 minimum bid), or ok
// false for an empty table.
func (t BidTable) MinBid() (float64, bool) {
	if len(t.Points) == 0 {
		return 0, false
	}
	return t.Points[0].Bid, true
}

// enforceMonotone makes guaranteed durations non-decreasing in the bid by
// taking a running maximum. The market mechanism implies monotonicity
// (§3: "as bids get larger, the durations must increase monotonically for
// a fixed target probability"); independent per-level estimation can
// wobble against it by a sample or two.
func enforceMonotone(points []BidPoint) {
	var best time.Duration
	for i := range points {
		if points[i].Duration < best {
			points[i].Duration = best
		} else {
			best = points[i].Duration
		}
	}
}

// Survival returns how many grid steps an instance launched at grid point
// i of s with the given bid runs before the provider terminates it: the
// distance to the first later grid point whose market price is at or above
// the bid (the conservative "eligible to be terminated" reading of §3.2).
// censored is true when the price never reaches the bid within the series;
// steps is then the observed-so-far survival, s.Len()-1-i.
func Survival(s *history.Series, i int, bid float64) (steps int, censored bool) {
	if i < 0 || i >= s.Len() {
		return 0, true
	}
	for j := i + 1; j < s.Len(); j++ {
		if s.Prices[j] >= bid {
			return j - i, false
		}
	}
	return s.Len() - 1 - i, true
}

// Survives reports whether an instance launched at grid point i with the
// given bid completes `need` grid steps before a price termination.
func Survives(s *history.Series, i int, bid float64, need int) bool {
	steps, censored := Survival(s, i, bid)
	if censored {
		// It ran to the end of recorded history; success iff the recorded
		// span covers the requested duration.
		return steps >= need
	}
	return steps >= need
}

// StepsFor converts a wall-clock duration to grid steps, rounding up.
func StepsFor(d time.Duration, step time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + step - 1) / step)
}
