package core

import (
	"math"
	"sync"

	"github.com/drafts-go/drafts/internal/qbets"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/stats"
)

// levelTracker maintains, online, the bid-survival duration sample for one
// fixed bid level (step 2 of the DrAFTS methodology, §3.2).
//
// Every grid point i at which the market price is below the level starts a
// survival episode ("the prediction is based on the conditional
// probability that the price allows the instance to run in the first
// place"). The episode resolves at the first later grid point whose price
// reaches the level, contributing the duration (in steps) to the sample.
// Episodes still unresolved at analysis time are right-censored and enter
// at their observed-so-far length — the conservative direction for a lower
// bound, since the true duration can only be longer.
//
// For a fixed level, the unresolved episodes are exactly the contiguous
// run of starts since the last price crossing, so censored face values are
// always {1, 2, ..., m}; this makes rank queries over the union of
// resolved and censored durations O(log^2 n).
type levelTracker struct {
	level    float64
	resolved *qbets.FenwickStore // resolved durations, in grid steps
	r        int                 // first pending (unresolved) start index
	t        int                 // last observed grid index; -1 before any
	window   int                 // only episodes starting within the last window steps count; 0 = unlimited

	// queue of resolved episodes in start order, for window eviction.
	queue []episode
	qhead int
}

type episode struct {
	start int32
	dur   int32
}

func newLevelTracker(level float64, window int) *levelTracker {
	return &levelTracker{
		level:    level,
		resolved: qbets.NewFenwickStore(1, 256),
		t:        -1,
		window:   window,
	}
}

// observe feeds the price at grid index i (indices must arrive in order).
func (lt *levelTracker) observe(i int, price float64) {
	if price >= lt.level {
		// Crossing: resolve every pending start with its survival length.
		for s := lt.r; s < i; s++ {
			lt.resolved.Insert(float64(i - s))
			lt.queue = append(lt.queue, episode{start: int32(s), dur: int32(i - s)})
		}
		lt.r = i + 1 // index i itself cannot start an episode
	}
	lt.t = i
	if lt.window > 0 {
		horizon := i - lt.window
		for lt.qhead < len(lt.queue) && int(lt.queue[lt.qhead].start) < horizon {
			lt.resolved.Remove(float64(lt.queue[lt.qhead].dur))
			lt.qhead++
		}
		if lt.qhead > len(lt.queue)/2 && lt.qhead > 1024 {
			lt.queue = append(lt.queue[:0], lt.queue[lt.qhead:]...)
			lt.qhead = 0
		}
	}
}

// effR is the first pending start index inside the retention window.
func (lt *levelTracker) effR() int {
	r := lt.r
	if lt.window > 0 {
		if h := lt.t - lt.window; h > r {
			r = h
		}
	}
	return r
}

// sampleSize returns resolved plus censored episode counts. The start at
// the current instant carries no information and is excluded.
func (lt *levelTracker) sampleSize() (resolved, censored int) {
	resolved = lt.resolved.Len()
	censored = lt.t - lt.effR()
	if censored < 0 {
		censored = 0
	}
	return resolved, censored
}

// countAtMost counts union sample values <= v steps.
func (lt *levelTracker) countAtMost(v int) int {
	_, m := lt.sampleSize()
	pending := v
	if pending > m {
		pending = m
	}
	if pending < 0 {
		pending = 0
	}
	return lt.resolved.CountAtMost(float64(v)) + pending
}

// bound returns the duration lower bound in grid steps for the
// (qd)-quantile at confidence c. When the sample is too small for the
// binomial bound to exist, the sample minimum serves as the conservative
// warm-up value. A zero return with ok=true means nothing can be promised.
func (lt *levelTracker) bound(qd, c float64) (steps int, ok bool) {
	n, m := lt.sampleSize()
	total := n + m
	if total == 0 {
		return 0, false
	}
	k, exists := stats.LowerBoundIndex(total, qd, c)
	if !exists {
		k = 1 // warm-up: the sample minimum
	}
	// Binary search the smallest v with countAtMost(v) >= k. Durations are
	// bounded by the observed span lt.t+1.
	lo, hi := 1, lt.t+1
	for lo < hi {
		mid := (lo + hi) / 2
		if lt.countAtMost(mid) >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// scanScratch pools the per-call episode-count buffer of durationBoundScan.
// A table build scans once per bid level over a window of up to three
// months of ticks (~26k ints, ~200 KiB); without pooling every refresh
// worker would allocate and discard megabytes of count buffers per combo.
// The pool is per-P under the hood, so the refresh fan-out's workers reuse
// their own scratch without contention. Pooling is invisible to results:
// the buffer is fully re-zeroed before use.
var scanScratch = sync.Pool{New: func() any { return new([]int) }}

// durationBoundScan is the single-shot equivalent of a levelTracker: the
// duration lower bound (in grid steps) for a fixed bid level over
// prices[0..len-1], censored at the end of the slice. It runs in O(n) time
// with pooled O(n) scratch space.
func durationBoundScan(prices []float64, level float64, qd, c float64) (steps int, ok bool) {
	n := len(prices)
	if n == 0 {
		return 0, false
	}
	// cnt[d] = number of resolved episodes with duration d.
	bufp := scanScratch.Get().(*[]int)
	defer scanScratch.Put(bufp)
	cnt := *bufp
	if cap(cnt) < n+1 {
		cnt = make([]int, n+1)
		*bufp = cnt
	} else {
		cnt = cnt[:n+1]
		clear(cnt)
	}
	resolved := 0
	r := 0
	for i, p := range prices {
		if p >= level {
			for s := r; s < i; s++ {
				cnt[i-s]++
				resolved++
			}
			r = i + 1
		}
	}
	t := n - 1
	m := t - r // censored episodes, face values {1..m}
	if m < 0 {
		m = 0
	}
	if m > 0 {
		mCensoredEpisodes.Load().Add(uint64(m))
	}
	total := resolved + m
	if total == 0 {
		return 0, false
	}
	k, exists := stats.LowerBoundIndex(total, qd, c)
	if !exists {
		k = 1
	}
	acc := 0
	for d := 1; d <= n; d++ {
		acc += cnt[d]
		if d <= m {
			acc++
		}
		if acc >= k {
			return d, true
		}
	}
	// Unreachable: acc reaches total >= k by d = n.
	return n, true
}

// priceQBETSConfig builds the QBETS configuration for the price series
// (step 1): an upper bound on the sqrt(p)-quantile, backed by the
// tick-grid Fenwick store since Spot prices are exact tick multiples.
func priceQBETSConfig(p Params) qbets.Config {
	return qbets.Config{
		Kind:          qbets.UpperBound,
		Quantile:      p.PriceQuantile(),
		Confidence:    p.Confidence,
		MaxHistory:    p.MaxHistory,
		NoChangePoint: p.DisableChangePoints,
		NoAutocorr:    p.DisableAutocorr,
		NewStore: func() qbets.OrderStats {
			return qbets.NewFenwickStore(spot.PriceTick, 4)
		},
	}
}

// minBid converts a price upper bound into the minimum bid by adding one
// price tick (§3.2: "DrAFTS adds $0.0001 ... to each upper bound
// prediction so that it must be larger than the quoted market price").
func minBid(upper float64) float64 {
	b := spot.RoundToTick(upper) + spot.PriceTick
	// Guard against float drift pulling the bid to or below the bound.
	for b <= upper {
		b += spot.PriceTick
	}
	return spot.RoundToTick(b)
}

// geometricGrid builds the absolute bid grid [lo..hi] with multiplicative
// spacing ratio, tick-aligned and deduplicated. The grid is capped at
// maxGridLevels entries to bound memory on extreme price ranges.
const maxGridLevels = 512

func geometricGrid(lo, hi, ratio float64) []float64 {
	if lo < spot.PriceTick {
		lo = spot.PriceTick
	}
	if hi < lo {
		hi = lo
	}
	var grid []float64
	last := math.Inf(-1)
	for v, i := lo, 0; i < maxGridLevels; i++ {
		tv := spot.RoundToTick(v)
		if tv <= last {
			tv = spot.RoundToTick(last + spot.PriceTick)
		}
		if tv > hi {
			break
		}
		grid = append(grid, tv)
		last = tv
		v *= ratio
	}
	if len(grid) == 0 || grid[len(grid)-1] < hi {
		grid = append(grid, spot.RoundToTick(hi))
	}
	return grid
}
