package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/spot"
)

func persistTestPredictor(t *testing.T, n int) *Predictor {
	t.Helper()
	start := time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC)
	ser, err := pricegen.Generator{Seed: 7}.Series(
		spot.Combo{Zone: "us-east-1a", Type: "m3.medium"}, start, n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(Params{Probability: 0.95, MaxHistory: n}, start)
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveSeries(ser)
	return p
}

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	p := persistTestPredictor(t, 2000)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := LoadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadPredictor: %v", err)
	}

	if !q.Now().Equal(p.Now()) {
		t.Errorf("Now: %v != %v", q.Now(), p.Now())
	}
	if q.Len() != p.Len() {
		t.Errorf("Len: %d != %d", q.Len(), p.Len())
	}
	pb, pok := p.MinBid()
	qb, qok := q.MinBid()
	if pok != qok || (pok && !spot.SamePrice(pb, qb)) {
		t.Errorf("MinBid: %v,%v != %v,%v", pb, pok, qb, qok)
	}
	// The restored predictor must produce the exact table the original does.
	pt, pok := p.Table()
	qt, qok := q.Table()
	if pok != qok || len(pt.Points) != len(qt.Points) {
		t.Fatalf("Table shape: %d,%v != %d,%v", len(pt.Points), pok, len(qt.Points), qok)
	}
	if !pt.At.Equal(qt.At) {
		t.Errorf("Table.At: %v != %v", pt.At, qt.At)
	}
	for i := range pt.Points {
		if !spot.SamePrice(pt.Points[i].Bid, qt.Points[i].Bid) ||
			pt.Points[i].Duration != qt.Points[i].Duration {
			t.Errorf("point %d: %+v != %+v", i, pt.Points[i], qt.Points[i])
		}
	}
}

// TestPredictorSaveLoadContinuesIdentically verifies the stronger contract:
// a restored predictor that keeps observing behaves exactly like one that
// never stopped.
func TestPredictorSaveLoadContinuesIdentically(t *testing.T) {
	start := time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC)
	ser, err := pricegen.Generator{Seed: 7}.Series(
		spot.Combo{Zone: "us-east-1a", Type: "m3.medium"}, start, 2500)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Predictor {
		p, err := NewPredictor(Params{Probability: 0.95, MaxHistory: 2500}, start)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Continuous predictor sees everything.
	cont := mk()
	cont.ObserveSeries(ser)
	// Checkpointed predictor sees the first 2000, round-trips, then the rest.
	ck := mk()
	ck.ObserveSeries(ser.Slice(0, 2000))
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ser.Prices[2000:] {
		restored.Observe(v)
	}

	if !restored.Now().Equal(cont.Now()) {
		t.Errorf("Now diverged: %v != %v", restored.Now(), cont.Now())
	}
	ct, cok := cont.Table()
	rt, rok := restored.Table()
	if cok != rok || len(ct.Points) != len(rt.Points) {
		t.Fatalf("table shape diverged: %d,%v != %d,%v", len(ct.Points), cok, len(rt.Points), rok)
	}
	for i := range ct.Points {
		if !spot.SamePrice(ct.Points[i].Bid, rt.Points[i].Bid) ||
			ct.Points[i].Duration != rt.Points[i].Duration {
			t.Errorf("point %d diverged: %+v != %+v", i, ct.Points[i], rt.Points[i])
		}
	}
}

func TestLoadPredictorRejectsDefects(t *testing.T) {
	p := persistTestPredictor(t, 500)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"garbage":     "not json",
		"bad-version": `{"version":99}`,
		"empty":       `{}`,
	}
	for name, in := range cases {
		if _, err := LoadPredictor(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("LoadPredictor accepted %s", name)
		}
	}
	// Sanity: the untampered state still loads.
	if _, err := LoadPredictor(bytes.NewReader([]byte(good))); err != nil {
		t.Errorf("LoadPredictor rejected valid state: %v", err)
	}
}
