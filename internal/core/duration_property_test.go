package core

import (
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/stats"
)

// TestDurationBoundIsConservativeIID: on a synthetic market whose true
// episode-length distribution is known, the duration bound must sit at or
// below the true (1-q)-quantile with at least the configured confidence.
// Construction: price alternates low for G~Geometric(p) steps then high
// for one step; episode lengths are iid geometric, so the true quantile
// is available in closed form.
func TestDurationBoundIsConservativeIID(t *testing.T) {
	rng := stats.NewRNG(271)
	const (
		pCross = 0.05 // per-step crossing probability -> geometric episodes
		qd     = 0.05
		c      = 0.95
		trials = 300
	)
	// True (qd)-quantile of Geometric(pCross) on {1,2,...}:
	// smallest k with 1-(1-p)^k >= qd.
	trueQ := 0
	acc := 0.0
	for k := 1; ; k++ {
		acc = 1 - pow(1-pCross, k)
		if acc >= qd {
			trueQ = k
			break
		}
	}
	covered := 0
	for trial := 0; trial < trials; trial++ {
		prices := make([]float64, 4000)
		for i := range prices {
			if rng.Bernoulli(pCross) {
				prices[i] = 1.0
			} else {
				prices[i] = 0.1
			}
		}
		steps, ok := durationBoundScan(prices, 0.5, qd, c)
		if !ok {
			t.Fatal("no bound")
		}
		if steps <= trueQ {
			covered++
		}
	}
	frac := float64(covered) / trials
	// The bound must be conservative (below the true quantile) with at
	// least confidence c, minus Monte-Carlo slack.
	if frac < c-0.05 {
		t.Errorf("bound covered only %.3f of trials (want >= %v)", frac, c)
	}
}

func pow(b float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= b
	}
	return out
}

// TestCensoringOnlyLowersBound: truncating the observation window (more
// censoring, less resolution) must never raise the duration bound beyond
// what the longer window supported — censored face values can only pull
// the low quantile down or keep it.
func TestCensoringOnlyLowersBound(t *testing.T) {
	s := mustGen(t, spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}, 8000)
	level := 0.4
	full, okFull := durationBoundScan(s.Prices, level, 0.025, 0.99)
	if !okFull {
		t.Skip("level never crossed; nothing to compare")
	}
	// A prefix ending just after the last crossing has the same resolved
	// sample but shorter censored faces; its bound must not exceed the
	// full bound by more than the rank wobble of the smaller n.
	lastCross := -1
	for i, p := range s.Prices {
		if p >= level {
			lastCross = i
		}
	}
	if lastCross < 1000 {
		t.Skip("crossing too early for a meaningful prefix")
	}
	prefix, okPre := durationBoundScan(s.Prices[:lastCross+1], level, 0.025, 0.99)
	if !okPre {
		t.Fatal("prefix lost the bound")
	}
	if prefix > full+1 {
		t.Errorf("prefix bound %d exceeds full bound %d", prefix, full)
	}
}

// TestAdviseQuoteIsSelfConsistent: the quote's own guarantee must be
// reproducible via GuaranteeFor at the quoted bid.
func TestAdviseQuoteIsSelfConsistent(t *testing.T) {
	p, _ := NewPredictor(testParams(0.95), t0)
	p.ObserveSeries(mustGen(t, spot.Combo{Zone: "us-east-1b", Type: "m4.large"}, 9000))
	for _, d := range []time.Duration{30 * time.Minute, 2 * time.Hour, 6 * time.Hour} {
		q, err := p.Advise(d)
		if err != nil {
			t.Fatalf("Advise(%v): %v", d, err)
		}
		g, ok := p.GuaranteeFor(q.Bid)
		if !ok || g != q.Duration {
			t.Errorf("Advise(%v) quote %v not reproducible: GuaranteeFor = %v, %v", d, q.Duration, g, ok)
		}
	}
}

// TestBatchTablesArePresentMomentOnly: shifting future prices must not
// change a table computed at an earlier query index.
func TestBatchTablesArePresentMomentOnly(t *testing.T) {
	combo := spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}
	s := mustGen(t, combo, 5000)
	od, _ := spot.ODPrice(combo.Type, combo.Zone.Region())
	maxBid := SuggestedMaxBid(s, od)

	q := []int{3000}
	orig, err := (&Batch{Series: s, Params: testParams(0.95), MaxBid: maxBid}).Tables(q)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the future violently.
	mutated := s.Clone()
	for i := 3001; i < mutated.Len(); i++ {
		mutated.Prices[i] = spot.RoundToTick(mutated.Prices[i] * 7)
	}
	after, err := (&Batch{Series: mutated, Params: testParams(0.95), MaxBid: maxBid}).Tables(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig[0].Points) != len(after[0].Points) {
		t.Fatalf("table size changed with future data: %d vs %d", len(orig[0].Points), len(after[0].Points))
	}
	for i := range orig[0].Points {
		if orig[0].Points[i] != after[0].Points[i] {
			t.Fatalf("point %d leaked future information: %+v vs %+v",
				i, orig[0].Points[i], after[0].Points[i])
		}
	}
}
