package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

var incStart = time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC)

// randomPrices draws a positive random-walk price path with occasional
// spikes and flat stretches — the regimes that exercise episode resolution,
// censoring, change-point resets, and history eviction differently.
func randomPrices(rng *rand.Rand, n int) []float64 {
	prices := make([]float64, n)
	p := 0.05 + rng.Float64()*0.2
	for i := range prices {
		switch rng.Intn(10) {
		case 0: // spike
			prices[i] = p * (1.5 + rng.Float64())
			continue
		case 1, 2: // flat
		default:
			p *= 1 + (rng.Float64()-0.5)*0.04
			if p < 0.001 {
				p = 0.001
			}
		}
		prices[i] = p
	}
	return prices
}

func tableBytes(t *testing.T, p *Predictor) ([]byte, bool) {
	t.Helper()
	table, ok := p.Table()
	if !ok {
		return nil, false
	}
	b, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	return b, true
}

// TestIncrementalTableEquivalence is the invariant behind the service's
// incremental refresh: cloning a predictor and feeding it only the ticks
// that arrived since must produce tables byte-identical to a predictor
// rebuilt over the full series. It checks 1000 random tick sequences with
// random split points, with MaxHistory small enough that many trials
// evict history across the split.
func TestIncrementalTableEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	params := Params{Probability: 0.95, MaxHistory: 120}
	for trial := 0; trial < 1000; trial++ {
		n := 40 + rng.Intn(200)
		cut := 1 + rng.Intn(n-1)
		prices := randomPrices(rng, n)

		full, err := NewPredictor(params, incStart)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range prices {
			full.Observe(v)
		}

		prefix, err := NewPredictor(params, incStart)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range prices[:cut] {
			prefix.Observe(v)
		}
		inc := prefix.Clone()
		for _, v := range prices[cut:] {
			inc.Observe(v)
		}

		wantB, wantOK := tableBytes(t, full)
		gotB, gotOK := tableBytes(t, inc)
		if wantOK != gotOK {
			t.Fatalf("trial %d (n=%d cut=%d): table ok mismatch: full=%v incremental=%v",
				trial, n, cut, wantOK, gotOK)
		}
		if !bytes.Equal(wantB, gotB) {
			t.Fatalf("trial %d (n=%d cut=%d): incremental table differs from full recompute:\nfull:        %s\nincremental: %s",
				trial, n, cut, wantB, gotB)
		}
		if !inc.Now().Equal(full.Now()) {
			t.Fatalf("trial %d: clock diverged: full=%v incremental=%v", trial, full.Now(), inc.Now())
		}
	}
}

// TestCloneIndependence ensures observations fed to a clone never leak
// into the original — the property that lets the service clone predictors
// that concurrent /v1/advise requests are still reading.
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, err := NewPredictor(Params{Probability: 0.99, MaxHistory: 120}, incStart)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range randomPrices(rng, 150) {
		p.Observe(v)
	}
	before, beforeOK := tableBytes(t, p)

	clone := p.Clone()
	for _, v := range randomPrices(rng, 90) {
		clone.Observe(v)
	}

	after, afterOK := tableBytes(t, p)
	if beforeOK != afterOK || !bytes.Equal(before, after) {
		t.Fatalf("observing through a clone mutated the original:\nbefore: %s\nafter:  %s", before, after)
	}
	if clone.Now().Equal(p.Now()) {
		t.Fatal("clone clock did not advance independently")
	}
}

// TestParamsWithDefaults pins the exported default-filling wrapper to the
// effective parameters a constructed predictor reports.
func TestParamsWithDefaults(t *testing.T) {
	want, err := (Params{Probability: 0.95}).WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(Params{Probability: 0.95}, incStart)
	if err != nil {
		t.Fatal(err)
	}
	if p.Params() != want {
		t.Fatalf("Params() = %+v, WithDefaults = %+v", p.Params(), want)
	}
	if _, err := (Params{Probability: 1.5}).WithDefaults(); err == nil {
		t.Fatal("probability outside (0,1) accepted")
	}
}
