package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/drafts-go/drafts/internal/qbets"
	"github.com/drafts-go/drafts/internal/spot"
)

// The online predictor is the expensive part of a refresh: it carries three
// months of ingested history plus the QBETS detector state. Save and Load
// let the service checkpoint that state into snapshots so a restart resumes
// forecasting where it stopped instead of re-observing the whole window.

// predictorState is the wire form of a Predictor. Only the retained window
// travels (observations already trimmed by MaxHistory are gone for good),
// together with the total observation count so the predictor clock (Now)
// survives the round trip.
type predictorState struct {
	Version int             `json:"version"`
	Params  Params          `json:"params"`
	Start   time.Time       `json:"start"`
	StepNS  int64           `json:"step_ns"`
	Count   int             `json:"count"`
	Prices  []float64       `json:"prices"`
	Price   json.RawMessage `json:"price_qbets"`
}

const predictorPersistVersion = 1

// Save serializes the predictor's full state as JSON.
func (p *Predictor) Save(w io.Writer) error {
	var priceBuf bytes.Buffer
	if err := p.price.Save(&priceBuf); err != nil {
		return fmt.Errorf("core: saving price bound state: %w", err)
	}
	st := predictorState{
		Version: predictorPersistVersion,
		Params:  p.params,
		Start:   p.start,
		StepNS:  int64(p.step),
		Count:   p.count,
		Prices:  append([]float64(nil), p.hist()...),
		Price:   json.RawMessage(bytes.TrimSpace(priceBuf.Bytes())),
	}
	return json.NewEncoder(w).Encode(st)
}

// LoadPredictor reconstructs a predictor saved with Save. The embedded
// QBETS state is rebuilt with the same tick-bucketed order-statistic store
// NewPredictor uses, so the restored forecaster is bit-identical to the
// saved one.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var st predictorState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decoding predictor state: %w", err)
	}
	if st.Version != predictorPersistVersion {
		return nil, fmt.Errorf("core: unsupported predictor state version %d", st.Version)
	}
	params, err := st.Params.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("core: persisted params invalid: %w", err)
	}
	if st.StepNS <= 0 {
		return nil, fmt.Errorf("core: non-positive persisted step %d", st.StepNS)
	}
	if st.Count < len(st.Prices) {
		return nil, fmt.Errorf("core: persisted count %d below window size %d", st.Count, len(st.Prices))
	}
	for i, v := range st.Prices {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("core: invalid persisted price %v at index %d", v, i)
		}
	}
	pq, err := qbets.Load(bytes.NewReader(st.Price), func() qbets.OrderStats {
		return qbets.NewFenwickStore(spot.PriceTick, 4)
	})
	if err != nil {
		return nil, fmt.Errorf("core: restoring price bound state: %w", err)
	}
	return &Predictor{
		params: params,
		price:  pq,
		start:  st.Start,
		step:   time.Duration(st.StepNS),
		prices: append([]float64(nil), st.Prices...),
		count:  st.Count,
	}, nil
}
