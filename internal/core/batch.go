package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/qbets"
	"github.com/drafts-go/drafts/internal/spot"
)

// Batch computes DrAFTS bid tables at many points of a recorded price
// series in one pass — the workhorse of backtesting (§4.1), where the
// predictor must be evaluated at hundreds of moments per (zone, type)
// combination.
//
// It runs the step-1 price QBETS online over the series, maintains one
// levelTracker per absolute bid-grid level for step 2, and snapshots
// everything at the requested query indices. The per-query minimum bid
// additionally gets an exact single-shot duration scan, since it falls
// between grid levels.
type Batch struct {
	Series *history.Series
	Params Params
	// MaxBid is the bid-grid ceiling; tables never quote above it. A
	// sensible choice is comfortably above both the On-demand price and
	// the highest price in the series (see SuggestedMaxBid).
	MaxBid float64
}

// SuggestedMaxBid returns a grid ceiling covering every useful bid: 1.25x
// the series maximum (a bid above every observed price) or 1.5x On-demand,
// whichever is larger.
func SuggestedMaxBid(s *history.Series, odPrice float64) float64 {
	max := 0.0
	for _, p := range s.Prices {
		if p > max {
			max = p
		}
	}
	v := 1.25 * max
	if w := 1.5 * odPrice; w > v {
		v = w
	}
	return spot.RoundToTick(v)
}

// Tables evaluates the predictor at the given strictly-ascending grid
// indices and returns one full-grid BidTable per query (bids from the
// momentary minimum bid up to MaxBid). Present-moment information only:
// the table at query index i uses prices[0..i] and nothing later.
func (b *Batch) Tables(queries []int) ([]BidTable, error) {
	params, err := b.Params.withDefaults()
	if err != nil {
		return nil, err
	}
	s := b.Series
	if s == nil || s.Len() == 0 {
		return nil, fmt.Errorf("core: batch needs a non-empty series")
	}
	if !(b.MaxBid > 0) {
		return nil, fmt.Errorf("core: batch needs a positive MaxBid")
	}
	for qi, q := range queries {
		if q < 0 || q >= s.Len() {
			return nil, fmt.Errorf("core: query index %d outside series of %d points", q, s.Len())
		}
		if qi > 0 && q <= queries[qi-1] {
			return nil, fmt.Errorf("core: query indices must be strictly ascending")
		}
	}

	// Absolute bid grid: from one tick above the minimum price observed
	// before the first query (no bid below that can be quoted as a
	// minimum bid there) up to MaxBid. Anchoring on pre-query data only
	// keeps every table a pure function of its own past; should prices
	// later sink below the anchor, the momentary minimum-bid entry —
	// always computed exactly — still leads the table.
	anchorEnd := s.Len()
	if len(queries) > 0 {
		anchorEnd = queries[0] + 1
	}
	lo := math.Inf(1)
	for _, p := range s.Prices[:anchorEnd] {
		if p < lo {
			lo = p
		}
	}
	grid := geometricGrid(lo+spot.PriceTick, b.MaxBid, params.TableRatio)
	trackers := make([]*levelTracker, len(grid))
	for i, lvl := range grid {
		trackers[i] = newLevelTracker(lvl, params.MaxHistory)
	}

	pricePred, err := qbets.New(priceQBETSConfig(params))
	if err != nil {
		return nil, err
	}

	qd, c := params.DurationQuantile(), params.Confidence
	out := make([]BidTable, 0, len(queries))
	next := 0
	for i, price := range s.Prices {
		pricePred.Observe(price)
		for _, tr := range trackers {
			tr.observe(i, price)
		}
		if next < len(queries) && queries[next] == i {
			upper, ok := pricePred.Bound()
			if !ok {
				return nil, fmt.Errorf("core: no price bound at index %d", i)
			}
			bid0 := minBid(upper)
			table := BidTable{At: s.TimeAt(i), Probability: params.Probability}

			// Exact entry for the momentary minimum bid. The scan window
			// matches the price predictor's retention.
			win := s.Prices[:i+1]
			if params.MaxHistory > 0 && len(win) > params.MaxHistory {
				win = win[len(win)-params.MaxHistory:]
			}
			if steps, ok := durationBoundScan(win, bid0, qd, c); ok {
				table.Points = append(table.Points, BidPoint{
					Bid:      bid0,
					Duration: time.Duration(steps) * s.Step,
				})
			} else {
				table.Points = append(table.Points, BidPoint{Bid: bid0})
			}

			for gi, lvl := range grid {
				if lvl <= bid0 {
					continue
				}
				steps, ok := trackers[gi].bound(qd, c)
				pt := BidPoint{Bid: lvl}
				if ok {
					pt.Duration = time.Duration(steps) * s.Step
				}
				table.Points = append(table.Points, pt)
			}
			sort.Slice(table.Points, func(a, b int) bool { return table.Points[a].Bid < table.Points[b].Bid })
			enforceMonotone(table.Points)
			out = append(out, table)
			next++
		}
	}
	return out, nil
}
