package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/spot"
)

func surfaceFixture(t *testing.T, prob float64) (*Predictor, *AdviseSurface) {
	t.Helper()
	p, err := NewPredictor(testParams(prob), t0)
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveSeries(mustGen(t, spot.Combo{Zone: "us-east-1b", Type: "c4.large"}, 5000))
	s, ok := p.Surface()
	if !ok {
		t.Fatal("Surface on warmed predictor failed")
	}
	return p, s
}

func TestSurfaceRequiresHistory(t *testing.T) {
	p, _ := NewPredictor(testParams(0.95), t0)
	if _, ok := p.Surface(); ok {
		t.Error("Surface with no data should fail")
	}
}

func TestSurfaceShape(t *testing.T) {
	_, s := surfaceFixture(t, 0.95)
	if len(s.Bids) == 0 || len(s.Bids) != len(s.Guar) {
		t.Fatalf("malformed surface: %d bids, %d guarantees", len(s.Bids), len(s.Guar))
	}
	for i := 1; i < len(s.Bids); i++ {
		if s.Bids[i] <= s.Bids[i-1] {
			t.Fatalf("bids not strictly increasing at %d: %d then %d", i, s.Bids[i-1], s.Bids[i])
		}
	}
	if s.Probability != 0.95 {
		t.Errorf("probability = %v", s.Probability)
	}
	if s.Step != spot.UpdatePeriod {
		t.Errorf("step = %v", s.Step)
	}
}

// TestSurfaceMatchesScan is the core equivalence property: for any
// duration, Lookup answers exactly what the escalation scan answers —
// same quote on success, refusal with the same error text on failure.
func TestSurfaceMatchesScan(t *testing.T) {
	for _, prob := range []float64{0.95, 0.99} {
		p, s := surfaceFixture(t, prob)
		rng := rand.New(rand.NewSource(43))
		durations := []time.Duration{
			time.Minute, 5 * time.Minute, time.Hour, 90 * time.Minute,
			24 * time.Hour, 25*time.Hour + time.Minute, 7 * 24 * time.Hour,
			90 * 24 * time.Hour, 200 * 24 * time.Hour,
		}
		for i := 0; i < 400; i++ {
			durations = append(durations, time.Duration(1+rng.Int63n(int64(40*24*time.Hour))))
		}
		for _, d := range durations {
			want, wantErr := p.Advise(d)
			got, ok := s.Lookup(d)
			if wantErr == nil {
				if !ok {
					t.Fatalf("p=%v d=%v: scan succeeded (%+v) but surface refused", prob, d, want)
				}
				if got != want {
					t.Fatalf("p=%v d=%v: surface %+v != scan %+v", prob, d, got, want)
				}
				continue
			}
			if ok {
				t.Fatalf("p=%v d=%v: scan refused (%v) but surface quoted %+v", prob, d, wantErr, got)
			}
			if gotErr := s.CannotGuarantee(d); gotErr.Error() != wantErr.Error() {
				t.Fatalf("p=%v d=%v: refusal text diverged:\nsurface: %s\nscan:    %s", prob, d, gotErr, wantErr)
			}
		}
	}
}

func TestSurfaceWireRoundTrip(t *testing.T) {
	p, s := surfaceFixture(t, 0.99)
	rebuilt, err := NewAdviseSurface(s.Probability, s.Step, s.Bids, s.Guar)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		d := time.Duration(1 + rng.Int63n(int64(30*24*time.Hour)))
		a, aok := s.Lookup(d)
		b, bok := rebuilt.Lookup(d)
		if aok != bok || a != b {
			t.Fatalf("d=%v: rebuilt surface diverged: (%+v,%v) != (%+v,%v)", d, b, bok, a, aok)
		}
	}
	_ = p
}

func TestNewAdviseSurfaceRejectsDefects(t *testing.T) {
	step := spot.UpdatePeriod
	cases := []struct {
		name string
		prob float64
		step time.Duration
		bids []uint32
		guar []uint32
	}{
		{"bad probability", 1.5, step, []uint32{10}, []uint32{1}},
		{"zero step", 0.99, 0, []uint32{10}, []uint32{1}},
		{"empty", 0.99, step, nil, nil},
		{"length mismatch", 0.99, step, []uint32{10, 20}, []uint32{1}},
		{"non-increasing bids", 0.99, step, []uint32{10, 10}, []uint32{1, 2}},
	}
	for _, tc := range cases {
		if _, err := NewAdviseSurface(tc.prob, tc.step, tc.bids, tc.guar); err == nil {
			t.Errorf("%s: defect accepted", tc.name)
		}
	}
}

func TestSurfaceLookupEdges(t *testing.T) {
	_, s := surfaceFixture(t, 0.95)
	if _, ok := s.Lookup(0); ok {
		t.Error("zero duration accepted")
	}
	if _, ok := s.Lookup(-time.Hour); ok {
		t.Error("negative duration accepted")
	}
	// One step is the smallest request; the minimum bid answers it on a
	// calm market, and it must match the scan like everything else.
	want, err := s.Lookup(s.Step)
	if !err {
		t.Fatal("single-step duration refused")
	}
	if want.Bid <= 0 || want.Duration < s.Step {
		t.Errorf("degenerate single-step quote %+v", want)
	}
	// Far beyond any retained history: refused, with the ceiling quote as
	// the best effort.
	if _, ok := s.Lookup(10 * 365 * 24 * time.Hour); ok {
		t.Error("decade-long guarantee accepted")
	}
	if best := s.Best(); best.Bid <= 0 {
		t.Errorf("Best = %+v", best)
	}
}
