// Package telemetry is the repository's zero-dependency observability
// substrate: an atomic metrics registry with Prometheus text-format
// exposition, and shared structured-logging helpers built on log/slog.
//
// Everything is nil-safe by construction: a nil *Registry hands out nil
// instruments, and every instrument method no-ops on a nil receiver. A
// library user (or benchmark) that never wires a registry therefore pays
// one pointer load and one branch per instrumentation site — telemetry off
// costs effectively nothing, which is what lets the hot paths (QBETS
// observation ingest, market clearing, the cloud simulator's event loop)
// carry permanent instrumentation.
//
// The exposition format is the Prometheus text format (version 0.0.4):
// counters, gauges, and fixed-bucket cumulative histograms, with optional
// label dimensions. Families render sorted by name and series sorted by
// label values, so output is deterministic and golden-testable.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Instrument type names as they appear in # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefaultDurationBuckets suit request/refresh latencies from sub-millisecond
// HTTP handlers up to multi-minute table recomputations (seconds).
var DefaultDurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Registry is a set of metric families. The zero value is not useful; use
// NewRegistry. A nil *Registry is a valid no-op sink: every getter returns
// a nil instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	fams     map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one named metric with a fixed type, label schema and, for
// histograms, bucket layout. Series (one per label-value combination) are
// created lazily.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only; ascending upper bounds, no +Inf

	mu     sync.RWMutex
	series map[string]any // *Counter | *Gauge | *Histogram
}

// seriesKeySep joins label values into map keys; \xff cannot appear in
// valid UTF-8 label values.
const seriesKeySep = "\xff"

// getFamily returns the named family, creating it on first use. Re-getting
// an existing name is idempotent when the type and label schema match and
// panics otherwise — colliding metric definitions are a programming error
// best caught at wiring time.
func (r *Registry) getFamily(name, help, typ string, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %q re-registered with labels %v, was %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: normalizeBuckets(buckets),
		series:  make(map[string]any),
	}
	r.fams[name] = f
	return f
}

// normalizeBuckets sorts, deduplicates, and strips any trailing +Inf (the
// histogram adds its own implicit +Inf bucket).
func normalizeBuckets(buckets []float64) []float64 {
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, +1) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		// Deduplicating adjacent equal bucket bounds after sorting compares
		// verbatim copies, so exact inequality is the right test.
		if i == 0 || b != out[i-1] { //draftsvet:ignore floatcmp verbatim-copy dedup after sort
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// get returns the series for the given label values, creating it with mk on
// first use.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, seriesKeySep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = mk()
	f.series[key] = s
	return s
}

// --- Counter -------------------------------------------------------------

// Counter is a monotonically increasing count. A nil *Counter no-ops.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds n (which must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Counter returns the unlabeled counter with the given name, registering it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.getFamily(name, help, typeCounter, nil, nil)
	if f == nil {
		return nil
	}
	return f.get(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct {
	f *family
}

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.getFamily(name, help, typeCounter, labels, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// With returns the counter for the given label values. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() any { return new(Counter) }).(*Counter)
}

// --- Gauge ---------------------------------------------------------------

// Gauge is an instantaneous float64 value. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetTime stores t as Unix seconds (the Prometheus *_timestamp_seconds
// convention).
func (g *Gauge) SetTime(t time.Time) {
	g.Set(float64(t.UnixNano()) / 1e9)
}

// Add adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.getFamily(name, help, typeGauge, nil, nil)
	if f == nil {
		return nil
	}
	return f.get(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct {
	f *family
}

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.getFamily(name, help, typeGauge, labels, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() any { return new(Gauge) }).(*Gauge)
}

// --- Histogram -----------------------------------------------------------

// Histogram is a fixed-bucket cumulative histogram. Bucket boundaries are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. A nil *Histogram no-ops.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket. Nil on a nil histogram.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Histogram returns the unlabeled histogram with the given name. Buckets
// are upper bounds in seconds (or whatever unit the metric uses); nil
// buckets default to DefaultDurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	f := r.getFamily(name, help, typeHistogram, nil, buckets)
	if f == nil {
		return nil
	}
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct {
	f *family
}

// HistogramVec returns the labeled histogram family with the given name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	f := r.getFamily(name, help, typeHistogram, labels, buckets)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// --- Exposition ----------------------------------------------------------

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before the families are snapshotted. It is how pull-model values —
// runtime/metrics samples, a tracer's counters — become gauges that are
// exactly as fresh as the scrape reading them. Hooks run outside the
// registry lock, so they may freely create and set instruments; they must
// not call WritePrometheus. Nil-safe.
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every registered family in Prometheus text
// format, families sorted by name and series by label values. OnScrape
// hooks run first, so gauge-backed pull values are sampled per scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := r.onScrape
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		fams[n].write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)

	for _, key := range keys {
		f.mu.RLock()
		s := f.series[key]
		f.mu.RUnlock()
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, seriesKeySep)
		}
		switch m := s.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, values, "", ""),
				strconv.FormatUint(m.Value(), 10))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, values, "", ""),
				formatFloat(m.Value()))
		case *Histogram:
			cum := uint64(0)
			counts := m.BucketCounts()
			for i, upper := range m.upper {
				cum += counts[i]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, values, "le", formatFloat(upper)), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				renderLabels(f.labels, values, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				renderLabels(f.labels, values, "", ""), formatFloat(m.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				renderLabels(f.labels, values, "", ""), m.Count())
		}
	}
}

// renderLabels formats {k1="v1",k2="v2"}, with an optional extra pair (used
// for histogram le labels). Returns "" with no labels at all.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes quotes, backslashes, and newlines exactly as the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Handler serves the registry in Prometheus text format (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
