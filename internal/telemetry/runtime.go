package telemetry

import (
	"math"
	rtm "runtime/metrics"
)

// runtimeSamples are the runtime/metrics the service exports: scheduler
// pressure (goroutines), heap shape (live objects and bytes, total mapped
// memory), and GC behaviour (cycle count plus pause-time max and p99 from
// the runtime's own pause histogram). These are the signals that explain a
// latency regression on a node — a goroutine leak, a heap blow-up, a GC
// pause storm — without attaching a profiler.
var runtimeSamples = []struct {
	name   string // runtime/metrics key
	metric string
	help   string
}{
	{"/sched/goroutines:goroutines", "drafts_go_goroutines",
		"Live goroutines."},
	{"/gc/heap/objects:objects", "drafts_go_heap_objects",
		"Live objects on the heap."},
	{"/memory/classes/heap/objects:bytes", "drafts_go_heap_bytes",
		"Bytes occupied by live heap objects."},
	{"/memory/classes/total:bytes", "drafts_go_memory_bytes",
		"Total memory mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "drafts_go_gc_cycles_total",
		"Completed GC cycles."},
}

// gcPauses is sampled separately: it is a histogram, summarized into two
// gauges rather than re-exported bucket by bucket.
const gcPauses = "/gc/pauses:seconds"

// RegisterRuntime wires a runtime/metrics sampler into the registry: each
// scrape reads one batch of runtime samples and publishes them as gauges,
// so /metrics always reflects the process at scrape time with no
// background goroutine. Safe to call on a nil registry.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	samples := make([]rtm.Sample, 0, len(runtimeSamples)+1)
	gauges := make([]*Gauge, len(runtimeSamples))
	for i, s := range runtimeSamples {
		samples = append(samples, rtm.Sample{Name: s.name})
		gauges[i] = r.Gauge(s.metric, s.help)
	}
	samples = append(samples, rtm.Sample{Name: gcPauses})
	pauseMax := r.Gauge("drafts_go_gc_pause_max_seconds",
		"Largest GC stop-the-world pause observed over the process lifetime.")
	pauseP99 := r.Gauge("drafts_go_gc_pause_p99_seconds",
		"99th-percentile GC pause over the process lifetime (bucket upper bound).")

	r.OnScrape(func() {
		rtm.Read(samples)
		for i := range gauges {
			switch s := samples[i]; s.Value.Kind() {
			case rtm.KindUint64:
				gauges[i].Set(float64(s.Value.Uint64()))
			case rtm.KindFloat64:
				gauges[i].Set(s.Value.Float64())
			}
		}
		if h := samples[len(samples)-1]; h.Value.Kind() == rtm.KindFloat64Histogram {
			max, p99 := summarizePauses(h.Value.Float64Histogram())
			pauseMax.Set(max)
			pauseP99.Set(p99)
		}
	})
}

// summarizePauses reduces the runtime's cumulative pause histogram to its
// observed maximum and 99th percentile. Both are bucket upper bounds —
// conservative, and exact enough for "is GC the problem" triage. Infinite
// bounds fall back to the adjacent finite edge.
func summarizePauses(h *rtm.Float64Histogram) (max, p99 float64) {
	if h == nil || len(h.Counts) == 0 {
		return 0, 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	target := uint64(math.Ceil(0.99 * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		upper := finiteEdge(h.Buckets, i+1)
		if cum >= target && p99 == 0 {
			p99 = upper
		}
		max = upper
	}
	return max, p99
}

// finiteEdge returns the bucket edge at i, backing off to the nearest
// finite edge when the histogram's outermost bounds are ±Inf.
func finiteEdge(edges []float64, i int) float64 {
	v := edges[i]
	if math.IsInf(v, +1) && i > 0 {
		return edges[i-1]
	}
	if math.IsInf(v, -1) && i+1 < len(edges) {
		return edges[i+1]
	}
	return v
}
