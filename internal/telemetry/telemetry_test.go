package telemetry

import (
	"bytes"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Idempotent re-registration returns the same instrument.
	if again := r.Counter("jobs_total", "Jobs."); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	at := time.Unix(1700000000, 0)
	g.SetTime(at)
	if got := g.Value(); got != 1.7e9 {
		t.Errorf("gauge time = %v, want 1.7e9", got)
	}
}

func TestVecSeriesAreIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "Requests.", "route", "code")
	v.With("/a", "2xx").Add(3)
	v.With("/a", "5xx").Inc()
	v.With("/b", "2xx").Inc()
	if got := v.With("/a", "2xx").Value(); got != 3 {
		t.Errorf("series /a,2xx = %d, want 3", got)
	}
	if got := v.With("/b", "2xx").Value(); got != 1 {
		t.Errorf("series /b,2xx = %d, want 1", got)
	}
}

// TestHistogramBuckets exercises the bucket math: boundary values land in
// the le (less-or-equal) bucket, values past the last boundary land in
// +Inf, and sum/count track exactly.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 5, 10, 11, 1e9} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped

	got := h.BucketCounts()
	want := []uint64{2, 2, 2, 2} // le=0.1: {.05,.1}; le=1: {.5,1}; le=10: {5,10}; +Inf: {11,1e9}
	if len(got) != len(want) {
		t.Fatalf("bucket count slice length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if wantSum := 0.05 + 0.1 + 0.5 + 1 + 5 + 10 + 11 + 1e9; math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	h.ObserveDuration(500 * time.Millisecond)
	if h.Count() != 9 {
		t.Errorf("count after ObserveDuration = %d, want 9", h.Count())
	}
}

func TestBucketNormalization(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "H.", []float64{5, 1, 1, math.Inf(1), 3})
	h.Observe(2)
	got := h.BucketCounts()
	// Normalized to {1,3,5} + implicit +Inf.
	if len(got) != 4 {
		t.Fatalf("buckets = %d, want 4", len(got))
	}
	if got[1] != 1 {
		t.Errorf("value 2 landed in %v, want bucket le=3", got)
	}
}

// TestPrometheusExposition is the golden test for the text format.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "A counter.").Add(3)
	r.Gauge("a_gauge", "A gauge.\nSecond line.").Set(1.5)
	v := r.CounterVec("c_total", "Labeled.", "route", "code")
	v.With("/x", "2xx").Inc()
	v.With(`/q"uote`, "5xx").Add(2)
	h := r.Histogram("d_seconds", "Histo.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge A gauge.\nSecond line.
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total A counter.
# TYPE b_total counter
b_total 3
# HELP c_total Labeled.
# TYPE c_total counter
c_total{route="/q\"uote",code="5xx"} 2
c_total{route="/x",code="2xx"} 1
# HELP d_seconds Histo.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.5"} 1
d_seconds_bucket{le="2"} 1
d_seconds_bucket{le="+Inf"} 2
d_seconds_sum 3.25
d_seconds_count 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

// TestNilSafety: a nil registry and every instrument it hands out must be
// callable with zero effect — this is the telemetry-off contract the
// library hot paths rely on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "A.")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("g", "G.")
	g.Set(1)
	g.Add(1)
	g.SetTime(time.Now())
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("h", "H.", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Error("nil histogram accumulated")
	}
	r.CounterVec("cv", "CV.", "l").With("x").Inc()
	r.GaugeVec("gv", "GV.", "l").With("x").Set(1)
	r.HistogramVec("hv", "HV.", nil, "l").With("x").Observe(1)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

func TestMismatchedRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "M.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "M.")
}

// TestConcurrentRegistry hammers one registry from many goroutines; run
// with -race this is the concurrency correctness test.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "Concurrent.", "worker")
	h := r.Histogram("conc_seconds", "Concurrent.", nil)
	g := r.Gauge("conc_gauge", "Concurrent.")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				v.With(label).Inc()
				h.Observe(float64(i) / perWorker)
				g.Add(1)
				if i%500 == 0 {
					var buf bytes.Buffer
					_ = r.WritePrometheus(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	total := uint64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += v.With(l).Value()
	}
	if want := uint64(workers * perWorker); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if h.Count() != uint64(workers*perWorker) {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if g.Value() != float64(workers*perWorker) {
		t.Errorf("gauge = %v, want %v", g.Value(), workers*perWorker)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "Warn": slog.LevelWarn,
		"warning": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "warn", true)
	lg.Info("hidden")
	lg.Warn("shown", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("info leaked through warn level")
	}
	if !strings.Contains(out, `"msg":"shown"`) || !strings.Contains(out, `"k":1`) {
		t.Errorf("JSON output missing fields: %s", out)
	}
}

// Benchmarks proving the telemetry-off (nil) path is one branch and the
// enabled path is a few atomic ops.

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "B.")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "B.", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
