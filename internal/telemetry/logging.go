package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger shared by the cmd/ binaries:
// level is one of "debug", "info", "warn", "error" (case-insensitive), and
// jsonFormat selects JSON over logfmt-style text output. An unknown level
// falls back to info — a misspelled flag should not silence a daemon.
func NewLogger(w io.Writer, level string, jsonFormat bool) *slog.Logger {
	lvl, err := ParseLevel(level)
	if err != nil {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// NopLogger returns a logger that discards everything with its Enabled
// check answering false, so callers pay no attribute formatting. It is the
// default for library components whose Config carries no logger.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// ParseLevel maps a level name to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
}
