package telemetry

import (
	"bytes"
	"math"
	"runtime"
	rtm "runtime/metrics"
	"strings"
	"testing"
)

func TestOnScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pulled_value", "Sampled at scrape time.")
	n := 0.0
	r.OnScrape(func() { n++; g.Set(n) })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pulled_value 1") {
		t.Errorf("first scrape did not run the hook:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pulled_value 2") {
		t.Errorf("second scrape did not re-run the hook:\n%s", buf.String())
	}

	// Nil-safety: registering on a nil registry and nil hooks no-op.
	var nilReg *Registry
	nilReg.OnScrape(func() {})
	r.OnScrape(nil)
}

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)

	// Force at least one GC cycle so the pause histogram and cycle counter
	// are non-trivial.
	runtime.GC()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"drafts_go_goroutines",
		"drafts_go_heap_objects",
		"drafts_go_heap_bytes",
		"drafts_go_memory_bytes",
		"drafts_go_gc_cycles_total",
		"drafts_go_gc_pause_max_seconds",
		"drafts_go_gc_pause_p99_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Errorf("missing runtime gauge %s", name)
		}
	}

	// A live process has at least one goroutine and one GC cycle by now;
	// zero means the sampler read nothing.
	if !gaugePositive(r, "drafts_go_goroutines") {
		t.Error("goroutine gauge not positive after scrape")
	}
	if !gaugePositive(r, "drafts_go_gc_cycles_total") {
		t.Error("gc cycle gauge not positive after a forced GC")
	}

	// The metric keys this sampler reads must exist in the running
	// runtime — catches a key renamed across Go versions.
	known := map[string]bool{}
	for _, d := range rtm.All() {
		known[d.Name] = true
	}
	for _, s := range runtimeSamples {
		if !known[s.name] {
			t.Errorf("runtime/metrics key %q unknown to this Go version", s.name)
		}
	}
	if !known[gcPauses] {
		t.Errorf("runtime/metrics key %q unknown to this Go version", gcPauses)
	}
}

// gaugePositive re-reads the named unlabeled gauge after a scrape.
func gaugePositive(r *Registry, name string) bool {
	return r.Gauge(name, "").Value() > 0
}

func TestSummarizePauses(t *testing.T) {
	// 100 observations: 99 in the first bucket, 1 in the last. p99 lands on
	// the first bucket's upper bound; max on the last finite edge.
	h := &rtm.Float64Histogram{
		Counts:  []uint64{99, 0, 1},
		Buckets: []float64{0, 1e-6, 1e-3, math.Inf(+1)},
	}
	max, p99 := summarizePauses(h)
	if p99 != 1e-6 {
		t.Errorf("p99 = %g, want 1e-6", p99)
	}
	if max != 1e-3 {
		t.Errorf("max = %g, want 1e-3 (finite fallback for +Inf edge)", max)
	}

	if max, p99 := summarizePauses(&rtm.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 1, 2},
	}); max != 0 || p99 != 0 {
		t.Errorf("empty histogram summarized to max=%g p99=%g", max, p99)
	}
	if max, p99 := summarizePauses(nil); max != 0 || p99 != 0 {
		t.Errorf("nil histogram summarized to max=%g p99=%g", max, p99)
	}
}
