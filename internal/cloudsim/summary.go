package cloudsim

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/drafts-go/drafts/internal/provisioner"
	"github.com/drafts-go/drafts/internal/stats"
)

// Summary is one row of Table 3: averages over repeated simulated
// experiments with one strategy.
type Summary struct {
	Strategy        string
	Runs            int
	AvgInstances    float64
	AvgCost         float64
	AvgMaxBidCost   float64
	AvgTerminations float64
}

// RunMany executes n independent replays of the same configuration with
// forked seeds (both operational and market randomness vary per run, as in
// the paper's 35 repeated experiments) and averages the reports.
func RunMany(cfg Config, n int) (Summary, error) {
	if n < 1 {
		return Summary{}, fmt.Errorf("cloudsim: need at least one run")
	}
	sum := Summary{Runs: n}
	for i := 0; i < n; i++ {
		run := cfg
		run.Seed = stats.ForkSeed(cfg.Seed, int64(i)+1)
		run.PriceSeed = stats.ForkSeed(cfg.PriceSeed, int64(i)+1)
		rep, err := Run(run)
		if err != nil {
			return Summary{}, fmt.Errorf("cloudsim: run %d: %w", i, err)
		}
		sum.Strategy = rep.Strategy
		sum.AvgInstances += float64(rep.Instances)
		sum.AvgCost += rep.Cost
		sum.AvgMaxBidCost += rep.MaxBidCost
		sum.AvgTerminations += float64(rep.Terminations)
	}
	f := float64(n)
	sum.AvgInstances /= f
	sum.AvgCost /= f
	sum.AvgMaxBidCost /= f
	sum.AvgTerminations /= f
	return sum, nil
}

// CompareStrategies runs every Table-3 strategy n times each under
// identical market seeds and returns the summaries in table order.
func CompareStrategies(cfg Config, n int) ([]Summary, error) {
	var out []Summary
	for _, s := range provisioner.Strategies() {
		run := cfg
		run.Strategy = s
		sum, err := RunMany(run, n)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", s, err)
		}
		out = append(out, sum)
	}
	return out, nil
}

// WriteTable2 renders two single-run reports in the paper's Table-2 layout.
func WriteTable2(w io.Writer, reports []Report) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Method\tInstances\tCost\tMaximum Bid Cost\tTerminations")
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%d\t$%.2f\t$%.2f\t%d\n", r.Strategy, r.Instances, r.Cost, r.MaxBidCost, r.Terminations)
	}
	return tw.Flush()
}

// WriteTable3 renders strategy summaries in the paper's Table-3 layout.
func WriteTable3(w io.Writer, sums []Summary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Method\tAvg. Instances\tAvg. Cost\tAvg. Max Bid Cost\tAvg. Terminations")
	for _, s := range sums {
		fmt.Fprintf(tw, "%s\t%.1f\t$%.2f\t$%.2f\t%.2f\n",
			s.Strategy, s.AvgInstances, s.AvgCost, s.AvgMaxBidCost, s.AvgTerminations)
	}
	return tw.Flush()
}
