package cloudsim

import (
	"sync/atomic"

	"github.com/drafts-go/drafts/internal/telemetry"
)

// launchDelayBuckets cover the calibrated lognormal request latency
// (mean ~90 s) out to pathological multi-minute tails, in seconds.
var launchDelayBuckets = []float64{15, 30, 60, 90, 120, 180, 300, 600}

// Instrument slots, nil (no-op) until RegisterMetrics wires a registry.
var (
	mInstances     atomic.Pointer[telemetry.Counter]
	mRevocations   atomic.Pointer[telemetry.Counter]
	mJobsCompleted atomic.Pointer[telemetry.Counter]
	mLaunchFails   atomic.Pointer[telemetry.Counter]
	mLaunchDelay   atomic.Pointer[telemetry.Histogram]
)

// RegisterMetrics wires the simulator counters into r. Idempotent for a
// given registry; call at startup before replays run.
func RegisterMetrics(r *telemetry.Registry) {
	mInstances.Store(r.Counter("drafts_cloudsim_instances_total",
		"Spot instances successfully provisioned in simulated replays."))
	mRevocations.Store(r.Counter("drafts_cloudsim_revocations_total",
		"Provider revocations during simulated replays (price reached bid)."))
	mJobsCompleted.Store(r.Counter("drafts_cloudsim_jobs_completed_total",
		"Workload jobs completed in simulated replays."))
	mLaunchFails.Store(r.Counter("drafts_cloudsim_launch_failures_total",
		"Instance requests that failed because the market moved above the bid."))
	mLaunchDelay.Store(r.Histogram("drafts_cloudsim_launch_seconds",
		"Simulated instance-request latency in seconds.", launchDelayBuckets))
}
