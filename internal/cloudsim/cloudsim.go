// Package cloudsim is the discrete-event cloud simulator behind the
// paper's application-driven experiments (§4.3, Tables 2 and 3) — the
// stand-in for the authors' SCRIMP provisioning simulator. It replays a
// workload trace against synthetic Spot markets and a cost-aware
// provisioner, reproducing the platform mechanics the paper describes:
//
//   - jobs queue per tool and run one at a time on instances of a
//     suitable type;
//   - the provisioner launches instances (with a calibrated request
//     latency) using one of the Table-3 bid strategies and, for the
//     DrAFTS strategies, picks the (type, zone) candidate with the
//     smallest maximum bid;
//   - instances are billed by the hour at the hour-start market price,
//     kept alive while busy, and released at the first hour boundary at
//     which they sit idle (the cost-aware reuse that packs ~3 jobs into
//     each paid instance-hour);
//   - when the market price reaches an instance's bid the provider
//     revokes it: the in-flight job is requeued and re-executed from
//     scratch, and the revocation is tallied (Table 3's terminations
//     column).
package cloudsim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"github.com/drafts-go/drafts/internal/billing"
	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/provisioner"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/stats"
	"github.com/drafts-go/drafts/internal/workload"
)

// Config parameterizes one simulated replay.
type Config struct {
	Trace    workload.Trace
	Region   spot.Region
	Strategy provisioner.Strategy
	// Probability is the DrAFTS durability target (the paper uses 0.99
	// for the platform experiments).
	Probability float64
	// Seed drives operational randomness (launch delays).
	Seed int64
	// PriceSeed drives the market realization; hold it fixed across
	// strategies to compare them under identical market conditions (§4.3:
	// the simulator "enables low cost experimentation under identical
	// market conditions").
	PriceSeed int64
	// WarmupSteps of price history precede the replay (default one month
	// of 5-minute periods — enough for QBETS to warm, cheaper to simulate
	// than the paper's full three months).
	WarmupSteps int
	// Start is the replay start time.
	Start time.Time
	// MeanLaunchDelay and LaunchDelaySigma parameterize the lognormal
	// instance request latency (calibrated overheads, §4.3).
	MeanLaunchDelay  time.Duration
	LaunchDelaySigma float64
	// MaxSimTime caps the simulation (guards against livelock).
	MaxSimTime time.Duration
}

// DefaultWarmupSteps is one month of market history.
const DefaultWarmupSteps = 30 * 24 * 12

func (c Config) withDefaults() (Config, error) {
	if len(c.Trace.Jobs) == 0 {
		return c, fmt.Errorf("cloudsim: empty trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return c, err
	}
	if len(spot.ZonesOf(c.Region)) == 0 {
		return c, fmt.Errorf("cloudsim: unknown region %q", c.Region)
	}
	if c.Probability == 0 {
		c.Probability = 0.99
	}
	if !(c.Probability > 0 && c.Probability < 1) {
		return c, fmt.Errorf("cloudsim: probability %v outside (0,1)", c.Probability)
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = DefaultWarmupSteps
	}
	if c.WarmupSteps < 200 {
		return c, fmt.Errorf("cloudsim: warmup %d too short for predictions", c.WarmupSteps)
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.MeanLaunchDelay == 0 {
		c.MeanLaunchDelay = 90 * time.Second
	}
	if c.MeanLaunchDelay < 0 {
		return c, fmt.Errorf("cloudsim: negative launch delay")
	}
	if c.LaunchDelaySigma == 0 {
		c.LaunchDelaySigma = 0.4
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 48 * time.Hour
	}
	return c, nil
}

// Report summarizes one replay (one row of Table 2, one sample of Table 3).
type Report struct {
	Strategy      string
	Instances     int     // instances provisioned
	Cost          float64 // actual billed cost
	MaxBidCost    float64 // worst case: every chargeable hour at the bid
	Terminations  int     // provider revocations
	JobsCompleted int
	Makespan      time.Duration
}

// event kinds.
type eventKind int

const (
	evArrival eventKind = iota
	evInstanceReady
	evJobFinish
	evHourBoundary
	evPriceStep
)

type event struct {
	at   time.Time
	seq  int64
	kind eventKind
	job  workload.Job
	inst *instance
	dec  provisioner.Decision
	tool string
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// instance is one provisioned Spot instance.
type instance struct {
	combo      spot.Combo
	bid        float64
	tool       string
	started    time.Time
	terminated bool
	idle       bool
	job        workload.Job // valid when !idle
	hasJob     bool
}

// comboState is the lazily built market view for one combo.
type comboState struct {
	series *history.Series
	pred   *core.Predictor
	fed    int
}

type quoteKey struct {
	combo spot.Combo
	step  int
	need  time.Duration
}

// engine is one replay in flight.
type engine struct {
	cfg       Config
	rng       *stats.RNG
	gen       pricegen.Generator
	states    map[spot.Combo]*comboState
	seriesLen int

	events eventHeap
	seq    int64
	now    time.Time

	queue      *provisioner.Queue
	pending    map[string]int // instances launching, per tool
	idle       map[string][]*instance
	live       []*instance // all non-terminated instances
	running    int
	quoteCache map[quoteKey]quoteVal

	report Report
}

type quoteVal struct {
	q   core.Quote
	err error
}

// Run executes one simulated replay.
func Run(cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}
	e := &engine{
		cfg:        cfg,
		rng:        stats.NewRNG(stats.ForkSeed(cfg.Seed, 0xc10d)),
		gen:        pricegen.Generator{Seed: cfg.PriceSeed},
		states:     make(map[spot.Combo]*comboState),
		seriesLen:  cfg.WarmupSteps + int(cfg.MaxSimTime/spot.UpdatePeriod) + 24,
		queue:      provisioner.NewQueue(),
		pending:    make(map[string]int),
		idle:       make(map[string][]*instance),
		quoteCache: make(map[quoteKey]quoteVal),
		report:     Report{Strategy: cfg.Strategy.String()},
	}
	e.now = cfg.Start
	for _, j := range cfg.Trace.Jobs {
		e.schedule(cfg.Start.Add(j.Submit), &event{kind: evArrival, job: j})
	}
	e.schedule(cfg.Start.Add(spot.UpdatePeriod), &event{kind: evPriceStep})

	deadline := cfg.Start.Add(cfg.MaxSimTime)
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		if e.now.After(deadline) {
			return e.report, fmt.Errorf("cloudsim: exceeded MaxSimTime %v with %d/%d jobs done",
				cfg.MaxSimTime, e.report.JobsCompleted, len(cfg.Trace.Jobs))
		}
		switch ev.kind {
		case evArrival:
			e.queue.Push(ev.job)
			e.provision(ev.job.Profile)
		case evInstanceReady:
			e.instanceReady(ev)
		case evJobFinish:
			e.jobFinish(ev)
		case evHourBoundary:
			e.hourBoundary(ev)
		case evPriceStep:
			e.priceStep()
		}
	}
	if e.report.JobsCompleted != len(cfg.Trace.Jobs) {
		return e.report, fmt.Errorf("cloudsim: finished with %d/%d jobs completed",
			e.report.JobsCompleted, len(cfg.Trace.Jobs))
	}
	return e.report, nil
}

func (e *engine) schedule(at time.Time, ev *event) {
	ev.at = at
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.events, ev)
}

// seriesStart is when each combo's price history begins.
func (e *engine) seriesStart() time.Time {
	return e.cfg.Start.Add(-time.Duration(e.cfg.WarmupSteps) * spot.UpdatePeriod)
}

// stepIndex maps a sim time to the price-grid index in force.
func (e *engine) stepIndex(t time.Time) int {
	return int(t.Sub(e.seriesStart()) / spot.UpdatePeriod)
}

func (e *engine) state(c spot.Combo) (*comboState, error) {
	st, ok := e.states[c]
	if ok {
		return st, nil
	}
	s, err := e.gen.Series(c, e.seriesStart(), e.seriesLen)
	if err != nil {
		return nil, err
	}
	pred, err := core.NewPredictor(core.Params{
		Probability: e.cfg.Probability,
		MaxHistory:  core.DefaultMaxHistory,
	}, s.Start)
	if err != nil {
		return nil, err
	}
	st = &comboState{series: s, pred: pred}
	e.states[c] = st
	return st, nil
}

// advance feeds the predictor every price announced up to (and including)
// the grid point in force at the current sim time.
func (st *comboState) advance(upto int) {
	if upto >= st.series.Len() {
		upto = st.series.Len() - 1
	}
	for st.fed <= upto {
		st.pred.Observe(st.series.Prices[st.fed])
		st.fed++
	}
}

// priceAt returns a combo's market price at time t.
func (e *engine) priceAt(c spot.Combo, t time.Time) (float64, error) {
	st, err := e.state(c)
	if err != nil {
		return 0, err
	}
	p, ok := st.series.At(t)
	if !ok {
		return 0, fmt.Errorf("cloudsim: no price for %v at %v", c, t)
	}
	return p, nil
}

// Advise implements provisioner.Quoter with present-moment predictor
// state, a per-step memoization cache, and a floor one tick above the
// current market price (no rational submission bids at or below it).
func (e *engine) Advise(c spot.Combo, d time.Duration) (core.Quote, error) {
	step := e.stepIndex(e.now)
	key := quoteKey{combo: c, step: step, need: d}
	if v, ok := e.quoteCache[key]; ok {
		return v.q, v.err
	}
	st, err := e.state(c)
	if err != nil {
		return core.Quote{}, err
	}
	st.advance(step)
	q, aerr := st.pred.Advise(d)
	if cur, perr := e.priceAt(c, e.now); perr == nil {
		if floor := spot.NextTickAbove(cur); q.Bid < floor {
			q.Bid = floor
		}
	}
	e.quoteCache[key] = quoteVal{q: q, err: aerr}
	return q, aerr
}

// OnDemand implements provisioner.Quoter.
func (e *engine) OnDemand(c spot.Combo) (float64, error) {
	return spot.ODPrice(c.Type, c.Zone.Region())
}

// provision reacts to queue changes for one tool: idle instances pick up
// work immediately; any remaining backlog beyond in-flight launches
// triggers new instance requests.
func (e *engine) provision(prof workload.Profile) {
	tool := prof.Tool
	// Idle instances absorb queued jobs first. Terminated stragglers left
	// in the list by hourly releases or revocations are dropped here.
	idles := e.idle[tool]
	for len(idles) > 0 && e.queue.Len(tool) > 0 {
		inst := idles[len(idles)-1]
		idles = idles[:len(idles)-1]
		if inst.terminated {
			continue
		}
		job, _ := e.queue.Pop(tool)
		e.startJob(inst, job)
	}
	e.idle[tool] = idles

	backlog := e.queue.Len(tool) - e.pending[tool]
	for i := 0; i < backlog; i++ {
		dec, err := provisioner.Choose(e.cfg.Strategy, e, e.cfg.Region, prof)
		if err != nil {
			// No market can serve this profile right now; the backlog
			// stays queued and the next event retries.
			return
		}
		delay := time.Duration(e.rng.LogNormal(
			math.Log(e.cfg.MeanLaunchDelay.Seconds()), e.cfg.LaunchDelaySigma)) * time.Second
		if delay < time.Second {
			delay = time.Second
		}
		mLaunchDelay.Load().Observe(delay.Seconds())
		e.pending[tool]++
		e.schedule(e.now.Add(delay), &event{kind: evInstanceReady, dec: dec, tool: tool})
	}
}

func (e *engine) instanceReady(ev *event) {
	e.pending[ev.tool]--
	cur, err := e.priceAt(ev.dec.Combo, e.now)
	if err != nil || ev.dec.Bid <= cur {
		// Launch failure: the market moved above the bid during the
		// request latency. Retry provisioning for any remaining backlog.
		mLaunchFails.Load().Inc()
		if e.queue.Len(ev.tool) > 0 {
			if p, perr := workload.ProfileFor(ev.tool); perr == nil {
				e.provision(p)
			}
		}
		return
	}
	inst := &instance{
		combo:   ev.dec.Combo,
		bid:     ev.dec.Bid,
		tool:    ev.tool,
		started: e.now,
		idle:    true,
	}
	mInstances.Load().Inc()
	e.report.Instances++
	e.running++
	e.schedule(e.now.Add(time.Hour), &event{kind: evHourBoundary, inst: inst})
	e.live = append(e.live, inst)
	if job, ok := e.queue.Pop(ev.tool); ok {
		e.startJob(inst, job)
	} else {
		e.idle[ev.tool] = append(e.idle[ev.tool], inst)
	}
}

func (e *engine) startJob(inst *instance, job workload.Job) {
	inst.idle = false
	inst.job = job
	inst.hasJob = true
	e.schedule(e.now.Add(job.Runtime), &event{kind: evJobFinish, inst: inst, job: job})
}

func (e *engine) jobFinish(ev *event) {
	inst := ev.inst
	if inst.terminated || !inst.hasJob || inst.job.ID != ev.job.ID {
		return // stale event: the instance was revoked mid-job
	}
	mJobsCompleted.Load().Inc()
	e.report.JobsCompleted++
	if mk := ev.at.Sub(e.cfg.Start); mk > e.report.Makespan {
		e.report.Makespan = mk
	}
	inst.hasJob = false
	if job, ok := e.queue.Pop(inst.tool); ok {
		e.startJob(inst, job)
	} else {
		inst.idle = true
		e.idle[inst.tool] = append(e.idle[inst.tool], inst)
	}
}

func (e *engine) hourBoundary(ev *event) {
	inst := ev.inst
	if inst.terminated {
		return
	}
	if inst.idle {
		e.release(inst, billing.UserTerminated)
		return
	}
	e.schedule(e.now.Add(time.Hour), &event{kind: evHourBoundary, inst: inst})
}

// priceStep applies the 5-minute market repricing: every live instance
// whose bid the new price reached is revoked. Terminated instances are
// compacted out of the live list as a side effect.
func (e *engine) priceStep() {
	var revoked []*instance
	kept := e.live[:0]
	for _, inst := range e.live {
		if inst.terminated {
			continue
		}
		kept = append(kept, inst)
		if e.bidOverrun(inst) {
			revoked = append(revoked, inst)
		}
	}
	e.live = kept
	for _, inst := range revoked {
		e.revoke(inst)
	}
	if e.report.JobsCompleted < len(e.cfg.Trace.Jobs) || e.running > 0 {
		e.schedule(e.now.Add(spot.UpdatePeriod), &event{kind: evPriceStep})
	}
}

func (e *engine) bidOverrun(inst *instance) bool {
	p, err := e.priceAt(inst.combo, e.now)
	if err != nil {
		return false
	}
	return p >= inst.bid
}

// revoke is a provider termination (§2.1): the current job is requeued and
// the final partial hour is not charged.
func (e *engine) revoke(inst *instance) {
	if inst.terminated {
		return
	}
	mRevocations.Load().Inc()
	e.report.Terminations++
	if inst.hasJob {
		e.queue.Requeue(inst.job)
		inst.hasJob = false
	}
	tool := inst.tool
	e.release(inst, billing.ProviderTerminated)
	if p, err := workload.ProfileFor(tool); err == nil {
		e.provision(p)
	}
}

// release finalizes an instance and bills it.
func (e *engine) release(inst *instance, reason billing.Reason) {
	inst.terminated = true
	e.running--
	st, err := e.state(inst.combo)
	if err == nil {
		if cost, cerr := billing.Cost(st.series, inst.started, e.now, reason); cerr == nil {
			e.report.Cost += cost
		}
	}
	e.report.MaxBidCost += billing.Risk(inst.bid, inst.started, e.now, reason)
}
