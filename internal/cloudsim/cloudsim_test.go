package cloudsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/drafts-go/drafts/internal/provisioner"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/workload"
)

func smallTrace(n int, seed int64) workload.Trace {
	return workload.Galaxies(n, time.Hour, seed)
}

func smallConfig(strategy provisioner.Strategy) Config {
	return Config{
		Trace:       smallTrace(60, 1),
		Region:      spot.USEast1,
		Strategy:    strategy,
		Seed:        2,
		PriceSeed:   3,
		WarmupSteps: 2500,
	}
}

func TestConfigValidation(t *testing.T) {
	ok := smallConfig(provisioner.Original)
	bad := []func(*Config){
		func(c *Config) { c.Trace = workload.Trace{} },
		func(c *Config) { c.Region = "mars-north-1" },
		func(c *Config) { c.Probability = 2 },
		func(c *Config) { c.WarmupSteps = 10 },
		func(c *Config) { c.MeanLaunchDelay = -time.Second },
		func(c *Config) { c.Trace.Jobs[0].Runtime = 0 },
	}
	for i, mutate := range bad {
		c := ok
		c.Trace = smallTrace(60, 1) // fresh copy, some mutations touch jobs
		mutate(&c)
		if _, err := c.withDefaults(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	c, err := ok.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.Probability != 0.99 || c.MeanLaunchDelay != 90*time.Second || c.MaxSimTime != 48*time.Hour {
		t.Errorf("defaults: %+v", c)
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	for _, strat := range provisioner.Strategies() {
		rep, err := Run(smallConfig(strat))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if rep.JobsCompleted != 60 {
			t.Errorf("%v: %d/60 jobs", strat, rep.JobsCompleted)
		}
		if rep.Instances == 0 {
			t.Errorf("%v: no instances provisioned", strat)
		}
		if rep.Instances > 60 {
			t.Errorf("%v: %d instances for 60 jobs — no reuse at all", strat, rep.Instances)
		}
		if rep.Cost <= 0 {
			t.Errorf("%v: cost %v", strat, rep.Cost)
		}
		if rep.MaxBidCost < rep.Cost {
			t.Errorf("%v: worst-case cost %v below actual %v", strat, rep.MaxBidCost, rep.Cost)
		}
		if rep.Makespan <= 0 || rep.Makespan > 47*time.Hour {
			t.Errorf("%v: makespan %v", strat, rep.Makespan)
		}
		if rep.Strategy != strat.String() {
			t.Errorf("%v: strategy label %q", strat, rep.Strategy)
		}
	}
}

// TestTable2Shape: under identical market conditions the DrAFTS strategy
// must cost no more than the Original strategy and carry much less
// worst-case risk (the paper's Table 2: $91.78 vs $106.10 cost, $98.60 vs
// $176.98 risk).
func TestTable2Shape(t *testing.T) {
	trace := workload.Galaxies(150, 80*time.Minute, 5)
	base := Config{
		Trace:       trace,
		Region:      spot.USEast1,
		Seed:        7,
		PriceSeed:   11,
		WarmupSteps: 2500,
	}
	orig := base
	orig.Strategy = provisioner.Original
	repO, err := Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	dr := base
	dr.Strategy = provisioner.DrAFTS1Hr
	repD, err := Run(dr)
	if err != nil {
		t.Fatal(err)
	}
	if repD.Cost > repO.Cost*1.05 {
		t.Errorf("DrAFTS cost %.2f not below Original %.2f", repD.Cost, repO.Cost)
	}
	if repD.MaxBidCost > repO.MaxBidCost*0.8 {
		t.Errorf("DrAFTS risk %.2f not well below Original %.2f", repD.MaxBidCost, repO.MaxBidCost)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(provisioner.DrAFTS1Hr))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(provisioner.DrAFTS1Hr))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunManyAverages(t *testing.T) {
	cfg := smallConfig(provisioner.Original)
	cfg.Trace = smallTrace(30, 9)
	sum, err := RunMany(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 3 || sum.AvgInstances <= 0 || sum.AvgCost <= 0 {
		t.Errorf("summary: %+v", sum)
	}
	if _, err := RunMany(cfg, 0); err == nil {
		t.Error("zero runs accepted")
	}
}

// TestTable3Shape: across repeated experiments, DrAFTS strategies must
// reduce worst-case risk versus Original, and the profile-based bid (being
// tighter) must not reduce terminations below the 1-hour bid.
func TestTable3Shape(t *testing.T) {
	cfg := Config{
		Trace:       workload.Galaxies(80, time.Hour, 13),
		Region:      spot.USEast1,
		Seed:        17,
		PriceSeed:   19,
		WarmupSteps: 2500,
	}
	sums, err := CompareStrategies(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("%d summaries", len(sums))
	}
	orig, oneHr, prof := sums[0], sums[1], sums[2]
	if oneHr.AvgMaxBidCost >= orig.AvgMaxBidCost {
		t.Errorf("DrAFTS 1-hr risk %.2f not below Original %.2f", oneHr.AvgMaxBidCost, orig.AvgMaxBidCost)
	}
	if prof.AvgMaxBidCost > oneHr.AvgMaxBidCost*1.1 {
		t.Errorf("profile risk %.2f above 1-hr risk %.2f", prof.AvgMaxBidCost, oneHr.AvgMaxBidCost)
	}
	if prof.AvgTerminations+0.01 < oneHr.AvgTerminations {
		t.Errorf("profile terminations %.2f below 1-hr %.2f despite tighter bids",
			prof.AvgTerminations, oneHr.AvgTerminations)
	}
}

func TestWriters(t *testing.T) {
	var buf bytes.Buffer
	reports := []Report{{Strategy: "Original", Instances: 10, Cost: 5.5, MaxBidCost: 12.25}}
	if err := WriteTable2(&buf, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$12.25") {
		t.Errorf("table 2 output:\n%s", buf.String())
	}
	buf.Reset()
	sums := []Summary{{Strategy: "DrAFTS (1-hr)", AvgInstances: 22.5, AvgCost: 3, AvgMaxBidCost: 4, AvgTerminations: 0.25}}
	if err := WriteTable3(&buf, sums); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.25") {
		t.Errorf("table 3 output:\n%s", buf.String())
	}
}

// TestRevocationRequeuePath hunts (over a few market seeds) for a replay
// in which the Original strategy suffers provider revocations, then
// verifies the engine's §4.3 semantics: the interrupted jobs were
// requeued and re-executed to completion, and worst-case cost accounting
// still dominates realized cost.
func TestRevocationRequeuePath(t *testing.T) {
	trace := workload.Galaxies(40, 60*time.Minute, 99)
	// Stretch runtimes so instances live many hours: long-lived instances
	// on volatile markets are the ones excursions revoke.
	for i := range trace.Jobs {
		trace.Jobs[i].Runtime *= 10
		if trace.Jobs[i].Runtime > 18*time.Hour {
			trace.Jobs[i].Runtime = 18 * time.Hour
		}
	}
	for seed := int64(1); seed <= 12; seed++ {
		cfg := Config{
			Trace:       trace,
			Region:      spot.USEast1,
			Strategy:    provisioner.Original,
			Seed:        seed,
			PriceSeed:   seed * 31,
			WarmupSteps: 2500,
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Terminations == 0 {
			continue
		}
		if rep.JobsCompleted != len(trace.Jobs) {
			t.Fatalf("seed %d: %d revocations left %d/%d jobs done",
				seed, rep.Terminations, rep.JobsCompleted, len(trace.Jobs))
		}
		if rep.MaxBidCost < rep.Cost {
			t.Fatalf("seed %d: worst case %v below realized %v", seed, rep.MaxBidCost, rep.Cost)
		}
		t.Logf("seed %d: %d revocations, all %d jobs completed", seed, rep.Terminations, rep.JobsCompleted)
		return
	}
	t.Skip("no revocation realized in 12 seeds; path exercised statistically by Table 3 runs")
}
