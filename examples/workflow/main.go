// Workflow replay: drive the §4.3 application experiment end to end — a
// Galaxies-shaped batch workload provisioned on simulated Spot markets,
// comparing the platform's original bids (80% of On-demand) against
// DrAFTS-derived bids under identical market conditions.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/drafts-go/drafts/internal/cloudsim"
	"github.com/drafts-go/drafts/internal/provisioner"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/workload"
)

func main() {
	// A 300-job slice of the kind of workload the paper replays (1000
	// jobs over 3h20m); smaller here so the example runs in seconds.
	trace := workload.Galaxies(300, 100*time.Minute, 2016)
	fmt.Printf("workload: %d jobs, %.1f machine-hours, %d tools\n",
		len(trace.Jobs), trace.TotalWork().Hours(), len(workload.Tools()))

	base := cloudsim.Config{
		Trace:       trace,
		Region:      spot.USEast1,
		Probability: 0.99,
		Seed:        7,
		PriceSeed:   11, // same market realization for every strategy
		WarmupSteps: cloudsim.DefaultWarmupSteps,
	}

	var reports []cloudsim.Report
	for _, strat := range provisioner.Strategies() {
		cfg := base
		cfg.Strategy = strat
		rep, err := cloudsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
		fmt.Printf("  %-18s %3d instances, cost $%.2f, worst-case $%.2f, %d revocations, makespan %v\n",
			rep.Strategy, rep.Instances, rep.Cost, rep.MaxBidCost, rep.Terminations,
			rep.Makespan.Round(time.Minute))
	}

	fmt.Println("\npaper-style table:")
	if err := cloudsim.WriteTable2(os.Stdout, reports); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDrAFTS cuts the worst-case (bid-priced) exposure by picking the cheapest")
	fmt.Println("guaranteed (type, zone) candidate and bidding only as high as the")
	fmt.Println("durability target requires; profile-based durations tighten it further.")
}
