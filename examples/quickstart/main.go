// Quickstart: ask DrAFTS for the smallest bid that keeps a Spot instance
// alive for two hours with 95% probability.
//
// The price history comes from the library's synthetic market (the EC2
// bidding market this models was retired in 2017); on a live system the
// same Series would be filled from a price feed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/drafts-go/drafts"
)

func main() {
	combo := drafts.Combo{Zone: "us-east-1b", Type: "c4.large"}

	// Three months of 5-minute market prices.
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	series, err := drafts.SyntheticHistory(combo, start, 3*30*24*12, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Build the predictor and feed it the history.
	pred, err := drafts.NewPredictor(drafts.Params{Probability: 0.95}, series.Start)
	if err != nil {
		log.Fatal(err)
	}
	pred.ObserveSeries(series)

	// The headline question: what do I bid for a 2-hour job?
	quote, err := pred.Advise(2 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	cur := series.Prices[series.Len()-1]
	od, _ := drafts.ODPrice(combo.Type, combo.Zone.Region())
	fmt.Printf("market %s\n", combo)
	fmt.Printf("  current spot price   $%.4f/hour\n", cur)
	fmt.Printf("  on-demand price      $%.4f/hour\n", od)
	fmt.Printf("  DrAFTS bid           $%.4f/hour\n", quote.Bid)
	fmt.Printf("  guaranteed duration  %v at probability %.2f\n", quote.Duration, quote.Probability)
	fmt.Printf("  worst-case saving    %.1f%% vs on-demand\n", 100*(1-quote.Bid/od))

	// The full bid-duration relationship (Figure 4 of the paper).
	table, _ := pred.Table()
	fmt.Println("\nbid table (5% increments up to 4x the minimum bid):")
	for _, p := range table.Points[:8] {
		fmt.Printf("  $%.4f -> %v\n", p.Bid, p.Duration)
	}
	fmt.Printf("  ... %d more rows\n", len(table.Points)-8)
}
