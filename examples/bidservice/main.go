// Bid service: run the DrAFTS prediction service in-process (the paper's
// predictspotprice.cs.ucsb.edu, §3.3) and consume it through the typed
// client — the integration pattern the Globus Galaxies provisioner used.
//
//	go run ./examples/bidservice
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/service"
	"github.com/drafts-go/drafts/internal/spot"
)

func main() {
	// Price source: three markets' worth of synthetic history.
	combos := []spot.Combo{
		{Zone: "us-east-1b", Type: "c4.large"},
		{Zone: "us-east-1c", Type: "c4.large"},
		{Zone: "us-east-1d", Type: "c4.large"},
	}
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	store := history.NewStore()
	if err := (pricegen.Generator{Seed: 42}).Populate(store, combos, start, 3*30*24*12); err != nil {
		log.Fatal(err)
	}

	// The service recomputes tables every 15 minutes in production; here a
	// single refresh is enough.
	srv, err := service.New(service.Config{Source: store})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Refresh(); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("service up at", ts.URL)

	// A client picks the cheapest zone for a one-hour job at p=0.99 — the
	// "fitness function" of the paper's launch experiments (§4.2).
	cl := &service.Client{BaseURL: ts.URL}
	available, err := cl.Combos()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service knows %d markets\n\n", len(available))

	best := spot.Combo{}
	bestBid := 0.0
	for _, c := range available {
		bid, err := cl.BidFor(c, 0.99, time.Hour)
		if err != nil {
			fmt.Printf("  %-24s cannot guarantee 1h: %v\n", c, err)
			continue
		}
		fmt.Printf("  %-24s 1h guarantee at $%.4f/hour\n", c, bid)
		if best == (spot.Combo{}) || bid < bestBid {
			best, bestBid = c, bid
		}
	}
	fmt.Printf("\nlaunch decision: %s with maximum bid $%.4f\n", best, bestBid)
}
