// Cost optimizer: the paper's §4.4 provisioning strategy over a whole
// region — for each instance type, compare the DrAFTS bid that guarantees
// 0.99 durability against the fixed On-demand price and buy whichever tier
// is cheaper in the worst case. Either way, the instance survives the
// requested duration with probability at least 0.99.
//
//	go run ./examples/costoptimizer
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/drafts-go/drafts"
)

func main() {
	const (
		duration = 4 * time.Hour
		p        = 0.99
	)
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	types := []drafts.InstanceType{
		"m4.large", "c4.large", "c4.4xlarge", "r4.xlarge", "m1.large", "cg1.4xlarge",
	}
	zone := drafts.Zone("us-east-1b")

	fmt.Printf("provisioning a %v workload at p=%.2f in %s\n\n", duration, p, zone)
	fmt.Printf("%-14s %-10s %-12s %-12s %s\n", "type", "tier", "bid/price", "on-demand", "worst-case saving")

	var odTotal, optTotal float64
	for _, ty := range types {
		combo := drafts.Combo{Zone: zone, Type: ty}
		if combo.Zone.Region() == "" {
			continue
		}
		series, err := drafts.SyntheticHistory(combo, start, 3*30*24*12, 7)
		if err != nil {
			// cg1.4xlarge exists only in us-east-1, so this always works
			// here; other zone/type holes would be skipped.
			log.Printf("skip %s: %v", combo, err)
			continue
		}
		pred, err := drafts.NewPredictor(drafts.Params{Probability: p}, series.Start)
		if err != nil {
			log.Fatal(err)
		}
		pred.ObserveSeries(series)

		od, err := drafts.ODPrice(ty, combo.Zone.Region())
		if err != nil {
			log.Fatal(err)
		}
		choice, err := drafts.OptimizeCost(pred, od, duration)
		if err != nil {
			log.Fatal(err)
		}
		tier := "on-demand"
		if choice.UseSpot {
			tier = "spot"
		}
		hours := float64(int(duration.Hours()))
		odTotal += od * hours
		optTotal += choice.HourlyWorstCase * hours
		fmt.Printf("%-14s %-10s $%-10.4f $%-10.4f %.1f%%\n",
			ty, tier, choice.HourlyWorstCase, od, 100*(1-choice.HourlyWorstCase/od))
	}
	fmt.Printf("\nportfolio worst case: $%.2f vs $%.2f on-demand (%.1f%% saved)\n",
		optTotal, odTotal, 100*(1-optTotal/odTotal))
	fmt.Println("note: the hostile cg1.4xlarge market (spot always above on-demand)")
	fmt.Println("correctly falls back to the reliable tier.")
}
