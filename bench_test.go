// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
//
// Each BenchmarkTableN/BenchmarkFigureN runs a scaled-down instance of the
// corresponding experiment per iteration (the full-scale runs live behind
// cmd/backtest, cmd/launchsim and cmd/replay) and reports the experiment's
// headline quantity via b.ReportMetric, so `go test -bench` doubles as a
// smoke check that every experiment's machinery works end to end.
package drafts_test

import (
	"testing"
	"time"

	"github.com/drafts-go/drafts"
	"github.com/drafts-go/drafts/internal/backtest"
	"github.com/drafts-go/drafts/internal/baselines"
	"github.com/drafts-go/drafts/internal/cloudsim"
	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/impact"
	"github.com/drafts-go/drafts/internal/launch"
	"github.com/drafts-go/drafts/internal/market"
	"github.com/drafts-go/drafts/internal/migrate"
	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/provisioner"
	"github.com/drafts-go/drafts/internal/qbets"
	"github.com/drafts-go/drafts/internal/spot"
	"github.com/drafts-go/drafts/internal/stats"
	"github.com/drafts-go/drafts/internal/workload"
)

var benchStart = time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)

func benchSeries(b *testing.B, combo spot.Combo, n int) *history.Series {
	b.Helper()
	s, err := pricegen.Generator{Seed: 42}.Series(combo, benchStart, n)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1Correctness runs the §4.1 backtest (all four bid methods,
// random requests, correctness scoring) over a small combo slice and
// reports DrAFTS's below-target fraction, which must be ~0.
func BenchmarkTable1Correctness(b *testing.B) {
	combos := spot.Combos()[:6]
	gen := pricegen.Generator{Seed: 42}
	lead := 30 * 24 * 12
	total := lead + 14*24*12 + 146
	cfg := backtest.Config{
		Probability: 0.99,
		NumRequests: 60,
		HistoryLead: lead,
		Seed:        1,
		Workers:     4,
	}
	seriesFor := func(c spot.Combo) (*history.Series, error) {
		return gen.Series(c, benchStart, total)
	}
	b.ResetTimer()
	var below float64
	for i := 0; i < b.N; i++ {
		outs, err := backtest.Run(cfg, combos, seriesFor)
		if err != nil {
			b.Fatal(err)
		}
		bk := backtest.BucketTable(outs, 0.99)[baselines.MethodDrAFTS]
		f, _, _ := bk.Frac()
		below = f
	}
	b.ReportMetric(below, "drafts-below-target-frac")
}

// BenchmarkFigure1OnDemandCDF scores the On-demand bid method over the
// same population and reports how many combos fall below target (the
// Figure 1 population).
func BenchmarkFigure1OnDemandCDF(b *testing.B) {
	combos := []spot.Combo{
		{Zone: "us-west-1a", Type: "c3.2xlarge"},  // volatile: should fail
		{Zone: "us-east-1b", Type: "c4.large"},    // calm: should pass
		{Zone: "us-east-1c", Type: "cg1.4xlarge"}, // hostile: fails at zero
	}
	gen := pricegen.Generator{Seed: 42}
	lead := 30 * 24 * 12
	total := lead + 14*24*12 + 146
	cfg := backtest.Config{Probability: 0.99, NumRequests: 60, HistoryLead: lead, Seed: 1, Workers: 3}
	seriesFor := func(c spot.Combo) (*history.Series, error) {
		return gen.Series(c, benchStart, total)
	}
	b.ResetTimer()
	var population float64
	for i := 0; i < b.N; i++ {
		outs, err := backtest.Run(cfg, combos, seriesFor)
		if err != nil {
			b.Fatal(err)
		}
		population = float64(len(backtest.FractionCDF(outs, baselines.MethodOnDemand, 0.99)))
	}
	b.ReportMetric(population, "combos-below-target")
}

// BenchmarkFigure2LaunchCalm runs the §4.2 launch experiment on the calm
// Figure-2 market and reports the failure count (expected ~0 at p=0.95).
func BenchmarkFigure2LaunchCalm(b *testing.B) {
	cfg := launch.Config{
		Region: spot.USEast1, Type: "c4.large",
		Probability: 0.95, NumInstances: 15, WarmupSteps: 2500, Seed: 7,
	}
	b.ResetTimer()
	var fails float64
	for i := 0; i < b.N; i++ {
		res, err := launch.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fails = float64(res.Failures())
	}
	b.ReportMetric(fails, "failures")
}

// BenchmarkFigure3LaunchVolatile is Figure 3's volatile-region variant.
func BenchmarkFigure3LaunchVolatile(b *testing.B) {
	cfg := launch.Config{
		Region: spot.USWest1, Type: "c3.2xlarge",
		Probability: 0.95, NumInstances: 15, WarmupSteps: 2500, Seed: 7,
	}
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := launch.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.SuccessFraction()
	}
	b.ReportMetric(frac, "success-fraction")
}

// BenchmarkFigure4BidTable times the service-style bid-duration table
// (Figure 4) over a full three-month history.
func BenchmarkFigure4BidTable(b *testing.B) {
	s := benchSeries(b, spot.Combo{Zone: "us-east-1a", Type: "c3.4xlarge"}, core.DefaultMaxHistory)
	pred, err := drafts.NewPredictor(drafts.Params{Probability: 0.99}, s.Start)
	if err != nil {
		b.Fatal(err)
	}
	pred.ObserveSeries(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pred.Table(); !ok {
			b.Fatal("no table")
		}
	}
}

// BenchmarkTable2Replay runs one Original-vs-DrAFTS workload replay
// (§4.3) and reports the risk reduction factor.
func BenchmarkTable2Replay(b *testing.B) {
	trace := workload.Galaxies(120, time.Hour, 5)
	base := cloudsim.Config{
		Trace: trace, Region: spot.USEast1,
		Seed: 7, PriceSeed: 11, WarmupSteps: 2500,
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		orig := base
		orig.Strategy = provisioner.Original
		ro, err := cloudsim.Run(orig)
		if err != nil {
			b.Fatal(err)
		}
		dr := base
		dr.Strategy = provisioner.DrAFTS1Hr
		rd, err := cloudsim.Run(dr)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ro.MaxBidCost / rd.MaxBidCost
	}
	b.ReportMetric(ratio, "risk-reduction-x")
}

// BenchmarkTable3RepeatedReplays runs the three-strategy comparison over
// repeated experiments (a scaled Table 3).
func BenchmarkTable3RepeatedReplays(b *testing.B) {
	cfg := cloudsim.Config{
		Trace: workload.Galaxies(60, time.Hour, 13), Region: spot.USEast1,
		Seed: 17, PriceSeed: 19, WarmupSteps: 2500,
	}
	b.ResetTimer()
	var term float64
	for i := 0; i < b.N; i++ {
		sums, err := cloudsim.CompareStrategies(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		term = sums[2].AvgTerminations
	}
	b.ReportMetric(term, "profile-terminations")
}

// BenchmarkTable4CostOptimization measures the §4.4 strategy's savings on
// a cheap market (the m1.large story) at p=0.99.
func BenchmarkTable4CostOptimization(b *testing.B) {
	combo := spot.Combo{Zone: "us-west-2c", Type: "m1.large"}
	s := benchSeries(b, combo, 20000)
	od, _ := spot.ODPrice(combo.Type, combo.Zone.Region())
	pred, _ := drafts.NewPredictor(drafts.Params{Probability: 0.99}, s.Start)
	pred.ObserveSeries(s)
	b.ResetTimer()
	var savings float64
	for i := 0; i < b.N; i++ {
		choice, err := drafts.OptimizeCost(pred, od, 4*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		savings = 100 * (1 - choice.HourlyWorstCase/od)
	}
	b.ReportMetric(savings, "worst-case-savings-%")
}

// BenchmarkTable5LowerProbability repeats Table 4's measurement at p=0.95;
// the savings must be at least as large (the Table 5 observation).
func BenchmarkTable5LowerProbability(b *testing.B) {
	combo := spot.Combo{Zone: "us-west-2c", Type: "m1.large"}
	s := benchSeries(b, combo, 20000)
	od, _ := spot.ODPrice(combo.Type, combo.Zone.Region())
	pred, _ := drafts.NewPredictor(drafts.Params{Probability: 0.95}, s.Start)
	pred.ObserveSeries(s)
	b.ResetTimer()
	var savings float64
	for i := 0; i < b.N; i++ {
		choice, err := drafts.OptimizeCost(pred, od, 4*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		savings = 100 * (1 - choice.HourlyWorstCase/od)
	}
	b.ReportMetric(savings, "worst-case-savings-%")
}

// --- Ablations -----------------------------------------------------------

// ablationViolationRate feeds a series into a QBETS upper-bound predictor
// and returns the next-step violation rate.
func ablationViolationRate(prices []float64, cfg qbets.Config) float64 {
	p := qbets.MustNew(cfg)
	viol, scored := 0, 0
	for _, v := range prices {
		if bound, ok := p.Bound(); ok {
			scored++
			if v > bound {
				viol++
			}
		}
		p.Observe(v)
	}
	if scored == 0 {
		return 0
	}
	return float64(viol) / float64(scored)
}

// BenchmarkAblationChangePoints compares QBETS violation rates with and
// without change-point detection on a regime-switching series.
func BenchmarkAblationChangePoints(b *testing.B) {
	rng := stats.NewRNG(3)
	prices := make([]float64, 12000)
	level := 0.1
	for i := range prices {
		if i%3000 == 0 && i > 0 {
			level *= rng.UniformRange(1.5, 3)
		}
		prices[i] = spot.RoundToTick(level * rng.UniformRange(0.95, 1.05))
	}
	base := qbets.Config{Kind: qbets.UpperBound, Quantile: 0.975, Confidence: 0.99}
	b.ResetTimer()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationViolationRate(prices, base)
		off := base
		off.NoChangePoint = true
		without = ablationViolationRate(prices, off)
	}
	b.ReportMetric(with, "violation-rate-with-cp")
	b.ReportMetric(without, "violation-rate-without-cp")
}

// BenchmarkAblationAutocorr compares violation rates with and without the
// effective-sample-size correction on a strongly autocorrelated series.
func BenchmarkAblationAutocorr(b *testing.B) {
	rng := stats.NewRNG(4)
	prices := make([]float64, 12000)
	x := 0.0
	for i := range prices {
		x = 0.97*x + rng.NormFloat64()
		prices[i] = 10 + x
	}
	base := qbets.Config{Kind: qbets.UpperBound, Quantile: 0.975, Confidence: 0.99}
	b.ResetTimer()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationViolationRate(prices, base)
		off := base
		off.NoAutocorr = true
		without = ablationViolationRate(prices, off)
	}
	b.ReportMetric(with, "violation-rate-with-ess")
	b.ReportMetric(without, "violation-rate-without-ess")
}

// BenchmarkAblationProbabilitySplit sweeps how the target probability is
// split between the price and duration quantiles (the paper's sqrt(p)
// choice, §3.2) and reports the resulting bid at a fixed duration. More
// weight on the price side raises the bid floor; more on the duration side
// demands longer-lived episodes.
func BenchmarkAblationProbabilitySplit(b *testing.B) {
	combo := spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}
	s := benchSeries(b, combo, 20000)
	// Emulate alternative splits by composing two predictors' params:
	// price quantile q and duration quantile 1 - p/q.
	bidFor := func(q float64) float64 {
		// core exposes the sqrt split; alternative splits are emulated by
		// solving for the probability whose sqrt equals the desired price
		// quantile, then verifying against the duration side separately.
		pred, err := drafts.NewPredictor(drafts.Params{Probability: q * q}, s.Start)
		if err != nil {
			b.Fatal(err)
		}
		pred.ObserveSeries(s)
		quote, _ := pred.Advise(2 * time.Hour)
		return quote.Bid
	}
	b.ResetTimer()
	var sqrtBid, heavyPrice float64
	for i := 0; i < b.N; i++ {
		sqrtBid = bidFor(0.9747)   // sqrt split of p=0.95
		heavyPrice = bidFor(0.995) // price side carries nearly all of p
	}
	b.ReportMetric(sqrtBid, "bid-sqrt-split")
	b.ReportMetric(heavyPrice, "bid-price-heavy")
}

// --- Microbenchmarks of the hot paths ------------------------------------

// BenchmarkQBETSObserveFenwick measures the online update cost with the
// tick-grid store (the production configuration).
func BenchmarkQBETSObserveFenwick(b *testing.B) {
	s := benchSeries(b, spot.Combo{Zone: "us-east-1b", Type: "c4.large"}, 26000)
	p := qbets.MustNew(qbets.Config{
		Kind: qbets.UpperBound, Quantile: 0.975, Confidence: 0.99,
		NewStore: func() qbets.OrderStats { return qbets.NewFenwickStore(spot.PriceTick, 4) },
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(s.Prices[i%s.Len()])
	}
}

// BenchmarkQBETSObserveTreap measures the same update with the generic
// treap store.
func BenchmarkQBETSObserveTreap(b *testing.B) {
	s := benchSeries(b, spot.Combo{Zone: "us-east-1b", Type: "c4.large"}, 26000)
	p := qbets.MustNew(qbets.Config{Kind: qbets.UpperBound, Quantile: 0.975, Confidence: 0.99})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(s.Prices[i%s.Len()])
	}
}

// BenchmarkAdvise measures a full bid recommendation against a three-month
// history — the paper reports ~2 minutes for its research prototype and
// milliseconds for incremental updates; this implementation answers from
// scratch in milliseconds.
func BenchmarkAdvise(b *testing.B) {
	s := benchSeries(b, spot.Combo{Zone: "us-west-1a", Type: "c3.2xlarge"}, core.DefaultMaxHistory)
	pred, _ := drafts.NewPredictor(drafts.Params{Probability: 0.99}, s.Start)
	pred.ObserveSeries(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Advise(time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPricegenMonth measures synthetic history generation throughput.
func BenchmarkPricegenMonth(b *testing.B) {
	gen := pricegen.Generator{Seed: 42}
	combo := spot.Combo{Zone: "us-east-1b", Type: "c4.large"}
	month := 30 * 24 * 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Series(combo, benchStart, month); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarketStep measures the auction simulator's clearing step.
func BenchmarkMarketStep(b *testing.B) {
	m, err := market.New(spot.Combo{Zone: "us-east-1b", Type: "c4.large"}, market.Config{}, benchStart, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkAdoptionImpact runs a miniature §6 adoption sweep and reports
// the realized durability at the highest adoption level.
func BenchmarkAdoptionImpact(b *testing.B) {
	cfg := impact.Config{
		Combo:            spot.Combo{Zone: "us-east-1b", Type: "c4.large"},
		Adoptions:        []int{0, 8},
		RequestsPerAgent: 5,
		WarmupSteps:      2000,
		Seed:             5,
	}
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		levels, err := impact.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		frac = levels[len(levels)-1].SuccessFraction()
	}
	b.ReportMetric(frac, "success-at-adoption")
}

// BenchmarkHostingPolicies runs the §5 hosting comparison over a short
// horizon and reports the DrAFTS-informed policy's availability.
func BenchmarkHostingPolicies(b *testing.B) {
	cfg := migrate.Config{
		Region:      spot.USEast1,
		Type:        "c4.large",
		Horizon:     24 * time.Hour,
		WarmupSteps: 2000,
		Seed:        3,
	}
	b.ResetTimer()
	var avail float64
	for i := 0; i < b.N; i++ {
		rep, err := migrate.Run(cfg, migrate.DrAFTSInformed)
		if err != nil {
			b.Fatal(err)
		}
		avail = rep.Availability
	}
	b.ReportMetric(avail, "availability")
}
