// Package drafts is the public API of the DrAFTS library — Durability
// Agreements From Time Series — a Go implementation of "Probabilistic
// Guarantees of Execution Duration for Amazon Spot Instances" (Wolski,
// Brevik, Chard, Chard — SC'17).
//
// DrAFTS answers one question about a pre-2018-style Spot market: what is
// the smallest maximum bid that lets an instance run for at least a given
// duration with probability at least p? It applies QBETS, a non-parametric
// binomial quantile-bound forecaster, to the market price history twice —
// an upper bound on the next price (the minimum bid) and a lower bound on
// how long each candidate bid survives.
//
// # Quick start
//
//	series := drafts.SyntheticHistory(
//	    drafts.Combo{Zone: "us-east-1b", Type: "c4.large"},
//	    start, 3*30*24*12, 42)
//	pred, _ := drafts.NewPredictor(drafts.Params{Probability: 0.95}, series.Start)
//	pred.ObserveSeries(series)
//	quote, err := pred.Advise(2 * time.Hour)
//	// quote.Bid survives >= 2h with probability >= 0.95
//
// The subdirectories under cmd/ regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index.
package drafts

import (
	"fmt"
	"time"

	"github.com/drafts-go/drafts/internal/core"
	"github.com/drafts-go/drafts/internal/history"
	"github.com/drafts-go/drafts/internal/pricegen"
	"github.com/drafts-go/drafts/internal/service"
	"github.com/drafts-go/drafts/internal/spot"
)

// Domain vocabulary, re-exported from the internal packages so downstream
// users can name every type the API mentions.
type (
	// Region is an EC2-style region ("us-east-1").
	Region = spot.Region
	// Zone is an availability zone ("us-east-1b").
	Zone = spot.Zone
	// InstanceType names an instance type ("c4.large").
	InstanceType = spot.InstanceType
	// Combo is one market: an (availability zone, instance type) pair.
	Combo = spot.Combo
	// TypeSpec describes an instance type's capability and On-demand price.
	TypeSpec = spot.TypeSpec
	// Series is a uniform-grid (5-minute) market price history.
	Series = history.Series

	// Params configures a Predictor: target probability, confidence,
	// history window, and table shape.
	Params = core.Params
	// Predictor is the online DrAFTS forecaster for one market.
	Predictor = core.Predictor
	// Quote is a bid recommendation with its guaranteed duration.
	Quote = core.Quote
	// BidTable is the bid-vs-guaranteed-duration relationship at a moment.
	BidTable = core.BidTable
	// BidPoint is one entry of a BidTable.
	BidPoint = core.BidPoint

	// HistoryStore archives price series per combo with 90-day retention;
	// it satisfies the service's Source interface.
	HistoryStore = history.Store

	// ServiceClient talks to a DrAFTS prediction service over REST.
	ServiceClient = service.Client
	// ServiceServer computes and serves bid tables over REST.
	ServiceServer = service.Server
	// ServiceConfig configures a ServiceServer.
	ServiceConfig = service.Config
)

// PriceTick is the smallest cost increment of the Spot tier ($0.0001).
const PriceTick = spot.PriceTick

// UpdatePeriod is the market's ~5-minute repricing period.
const UpdatePeriod = spot.UpdatePeriod

// NewPredictor creates an online DrAFTS predictor whose first observation
// corresponds to time start.
func NewPredictor(params Params, start time.Time) (*Predictor, error) {
	return core.NewPredictor(params, start)
}

// NewSeries allocates an empty price series beginning at start on the
// standard 5-minute grid.
func NewSeries(start time.Time) *Series { return history.NewSeries(start) }

// NewHistoryStore returns an empty price archive, ready to Put series into
// and to serve as a ServiceConfig.Source.
func NewHistoryStore() *HistoryStore { return history.NewStore() }

// PopulateSynthetic fills a store with deterministic synthetic histories
// for the given combos — the quickest way to stand up a ServiceServer
// without a live price feed.
func PopulateSynthetic(store *HistoryStore, combos []Combo, start time.Time, points int, seed int64) error {
	return pricegen.Generator{Seed: seed}.Populate(store, combos, start, points)
}

// LoadHistoryDir fills a store from a directory of archived histories (the
// cmd/marketgen format); it returns the store and the file count.
func LoadHistoryDir(dir string) (*HistoryStore, int, error) { return history.LoadDir(dir) }

// NewServiceServer constructs a prediction service over a price source.
func NewServiceServer(cfg ServiceConfig) (*ServiceServer, error) { return service.New(cfg) }

// Catalog returns the 53-type instance catalog the paper's study covered.
func Catalog() []TypeSpec { return spot.Catalog() }

// Combos enumerates the 452 (zone, type) combinations available across the
// modelled regions — the paper's backtest population.
func Combos() []Combo { return spot.Combos() }

// ODPrice returns the On-demand price for an instance type in a region.
func ODPrice(t InstanceType, r Region) (float64, error) { return spot.ODPrice(t, r) }

// SyntheticHistory generates a deterministic synthetic price history for a
// combo, with the market personality the paper documents for it (calm,
// volatile, spiky, hostile, diurnal, or cheap). It stands in for the
// retired EC2 price-history API.
func SyntheticHistory(c Combo, start time.Time, points int, seed int64) (*Series, error) {
	return pricegen.Generator{Seed: seed}.Series(c, start, points)
}

// TierChoice is the outcome of the §4.4 cost-optimization strategy.
type TierChoice struct {
	// UseSpot is true when the DrAFTS bid undercuts the On-demand price.
	UseSpot bool
	// Bid is the Spot maximum bid to submit (when UseSpot).
	Bid float64
	// HourlyWorstCase is the most the chosen tier can cost per hour: the
	// bid in the Spot tier, the fixed price On-demand.
	HourlyWorstCase float64
	// Duration is the probabilistic durability the choice carries.
	Duration time.Duration
}

// OptimizeCost implements the paper's provisioning strategy (§4.4): ask
// DrAFTS for the minimal bid guaranteeing the duration; if that bid is
// below the On-demand price, request a Spot instance with it — the
// worst-case spend is still below the reliable tier — otherwise buy
// On-demand. Either way the instance survives the duration with at least
// the predictor's configured probability.
func OptimizeCost(p *Predictor, odPrice float64, d time.Duration) (TierChoice, error) {
	if !(odPrice > 0) {
		return TierChoice{}, fmt.Errorf("drafts: non-positive on-demand price %v", odPrice)
	}
	quote, err := p.Advise(d)
	if err != nil || quote.Bid >= odPrice {
		// Cannot guarantee in the Spot tier below the fixed price; buy
		// reliability directly.
		return TierChoice{UseSpot: false, HourlyWorstCase: odPrice, Duration: d}, nil
	}
	return TierChoice{UseSpot: true, Bid: quote.Bid, HourlyWorstCase: quote.Bid, Duration: quote.Duration}, nil
}
